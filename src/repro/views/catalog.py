"""The view catalog: answering one-shot queries from materialised views.

The paper's engine maintains views incrementally but, until this module,
every ``evaluate()`` still paid full recomputation — even when a
registered view (or a shared interior subplan of one) already held exactly
the state the query needs.  MV4PG (Xu et al., 2024) calls view matching +
query rewriting the missing half of a materialised-view system for
property graphs; this module supplies it on top of the reproduction's two
existing identities:

* every registered view's **root** result lives in its production node,
* with cross-view sharing, every shareable **interior subplan** of every
  view lives in the engine's :class:`~repro.rete.sharing.SharedSubplanLayer`,
  keyed by ``(fingerprint, parameter bindings, variant)`` and kept exactly
  current by delta propagation.

:class:`ViewCatalog` indexes the roots under the *same* key shape and
treats the sharing layer as the subplan tier of the catalog, so matching a
one-shot plan is a dict lookup per subtree — no containment search over
query text, no re-derivation.  A hit is served through the targeted-
activation protocol (``state_delta`` — reconstruct a node's output bag
from its memories) and spliced into the plan as a
:class:`~repro.algebra.ops.ViewScan` leaf; residual operators above the
splice point run unchanged in the pull interpreter.

Consistency rules (each one differentially tested):

* inside an open batch / transaction window the graph is ahead of the
  networks, so the catalog declines and evaluation falls back to the
  graph — snapshot reads are never served stale;
* a detached view leaves the root index immediately (the engine notifies
  the catalog before ``detach()`` returns); its subplans survive exactly
  as long as the sharing layer keeps maintaining them (held by other
  views, or retained in the detached LRU — both stay current);
* parameterised subtrees match only under equal resolved bindings;
* in ``reachability`` transitive mode the maintained closure semantics
  differ from the interpreter's trail semantics, so subtrees containing a
  transitive join are never served there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from ..algebra import ops
from ..algebra.printer import format_compact
from ..eval.interpreter import Interpreter
from ..eval.results import ResultTable
from ..rete.sharing import SharedSubplanLayer, subplan_cache_key
from .matcher import rewrite_query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..compiler.pipeline import CompiledQuery
    from ..rete.engine import IncrementalEngine, View

Bag = dict[tuple, int]


@dataclass(frozen=True)
class MaterializedSource:
    """One servable materialisation: where a spliced scan reads from."""

    #: returns a fresh ``row → multiplicity`` bag of the current contents
    fetch: Callable[[], Bag]
    #: human-readable origin, for EXPLAIN / the CLI
    description: str
    #: ``"view"`` (production-backed root) or ``"subplan"`` (shared node)
    kind: str


@dataclass
class AnswerStats:
    """Counters for the ablation report and EXPLAIN output."""

    queries: int = 0  # try_answer calls
    answered: int = 0  # served from the catalog
    exact: int = 0  # whole plan was one materialisation
    residual: int = 0  # served with residual operators on top
    root_hits: int = 0  # sources read from view result tables
    subplan_hits: int = 0  # sources read from shared subplan memories
    fallbacks: int = 0  # full evaluation (no cover / params / stale)
    stale_declines: int = 0  # fallbacks forced by an open batch window

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


class ViewCatalog:
    """Fingerprint-indexed registry of everything live views materialise.

    Owned by :class:`~repro.api.QueryEngine`; subscribes to the
    incremental engine's view lifecycle so the root index tracks
    register/detach exactly, and reads the sharing layer in place for the
    subplan tier (which the layer already keeps consistent under
    register/detach/prune).
    """

    def __init__(self, engine: "IncrementalEngine"):
        self._engine = engine
        #: catalog key → views materialising exactly that plan (FIFO serve)
        self._roots: dict[tuple, list["View"]] = {}
        self._root_keys: dict[int, tuple] = {}  # id(view) → its key
        self.stats = AnswerStats()
        engine.subscribe_views(self._on_view_event)
        for view in engine.views:
            self._index_view(view)

    # -- lifecycle ----------------------------------------------------------

    def _variant(self) -> tuple:
        return (self._engine.transitive_mode,)

    def _on_view_event(self, phase: str, view: "View") -> None:
        if phase == "register":
            self._index_view(view)
        else:
            self._drop_view(view)

    def _index_view(self, view: "View") -> None:
        key = subplan_cache_key(
            view.compiled.plan, view.network.ctx.parameters, self._variant()
        )
        if key is None:
            return  # unfingerprintable plan: maintained, but never matched
        self._roots.setdefault(key, []).append(view)
        self._root_keys[id(view)] = key

    def _drop_view(self, view: "View") -> None:
        key = self._root_keys.pop(id(view), None)
        if key is None:
            return
        views = self._roots.get(key)
        if views is not None:
            views.remove(view)
            if not views:
                del self._roots[key]

    # -- matching -----------------------------------------------------------

    @property
    def root_count(self) -> int:
        return sum(len(views) for views in self._roots.values())

    def _subplan_layer(self) -> SharedSubplanLayer | None:
        layer = self._engine.input_layer
        return layer if isinstance(layer, SharedSubplanLayer) else None

    @property
    def probes_lifted_plans(self) -> bool:
        """Whether maintained state may live under lifted plan shapes.

        True exactly when cross-binding sharing is active: views are then
        registered with parameter-dependent selections lifted above their
        binding-free cores, so the matcher must probe that form too.
        """
        layer = self._subplan_layer()
        return layer is not None and layer.share_across_bindings

    @property
    def subplan_count(self) -> int:
        layer = self._subplan_layer()
        return layer.subplan_count if layer is not None else 0

    def _servable(self, op: ops.Operator) -> bool:
        """Whether serving *op*'s subtree preserves one-shot semantics.

        Only the transitive closure has a mode whose maintained semantics
        (reachability: one row per reachable target) diverge from the
        interpreter's reference semantics (trails: one row per edge-
        distinct walk); everywhere else maintained state *is* the bag the
        interpreter would compute.
        """
        if self._engine.transitive_mode == "trails":
            return True
        return not any(isinstance(o, ops.TransitiveJoin) for o in op.walk())

    def lookup(
        self, op: ops.Operator, parameters: Mapping[str, Any]
    ) -> MaterializedSource | None:
        """The live materialisation covering *op* exactly, if any.

        Root entries (production-backed — the whole result is already a
        bag) win over shared subplans (reconstructed from node memories
        via ``state_delta``).  Pure read: no stats side effects, so the
        matcher and EXPLAIN can probe freely.
        """
        key = subplan_cache_key(op, parameters, self._variant())
        if key is None:
            return None
        views = self._roots.get(key)
        if views and self._servable(op):
            view = views[0]
            return MaterializedSource(
                fetch=view.network.production.multiset,
                description=f"view[{view.compiled.text.strip()}]",
                kind="view",
            )
        layer = self._subplan_layer()
        if layer is not None:
            node = layer.subplan_peek(key)
            if node is not None and self._servable(op):
                def fetch(layer=layer, node=node) -> Bag:
                    return {row: m for row, m in layer.state_delta(node)}

                return MaterializedSource(
                    fetch=fetch,
                    description=f"subplan[{_compact(op)}]",
                    kind="subplan",
                )
            # binding-indexed tier: a parameterised σ whose shape is
            # maintained for this exact binding as one partition of a
            # shared node — reconstructed by filtering the shared core's
            # state under the partition's bindings
            partition = layer.partition_peek(op, parameters, self._variant())
            if partition is not None and self._servable(op):
                def fetch_partition(layer=layer, node=partition) -> Bag:
                    return {row: m for row, m in layer.state_delta(node)}

                return MaterializedSource(
                    fetch=fetch_partition,
                    description=f"binding-partition[{_compact(op)}]",
                    kind="subplan",
                )
        return None

    # -- answering ----------------------------------------------------------

    def try_answer(
        self,
        compiled: "CompiledQuery",
        parameters: Mapping[str, Any] | None = None,
    ) -> ResultTable | None:
        """Answer *compiled* from materialised state, or ``None`` to fall
        back to full evaluation."""
        self.stats.queries += 1
        if self._engine.pending_changes():
            # an open batch window: the graph is ahead of every memory
            self.stats.stale_declines += 1
            self.stats.fallbacks += 1
            return None
        if not self._roots and self.subplan_count == 0:
            self.stats.fallbacks += 1
            return None
        rewrite = rewrite_query(self, compiled, parameters)
        if rewrite is None:
            self.stats.fallbacks += 1
            return None
        self.stats.answered += 1
        if rewrite.exact:
            self.stats.exact += 1
        else:
            self.stats.residual += 1
        for source in rewrite.sources:
            if source.kind == "view":
                self.stats.root_hits += 1
            else:
                self.stats.subplan_hits += 1
        return Interpreter(self._engine.graph, parameters).run(rewrite.plan)

    def describe_match(
        self,
        compiled: "CompiledQuery",
        parameters: Mapping[str, Any] | None = None,
    ) -> str:
        """EXPLAIN section: what view answering would do for *compiled*.

        Pure — no stats side effects and no result materialisation.
        """
        if self._engine.pending_changes():
            return (
                "declined (open batch/transaction window — maintained "
                "state lags the graph); full evaluation"
            )
        rewrite = rewrite_query(self, compiled, parameters)
        if rewrite is None:
            return "no covering view or shared subplan; full evaluation"
        lines = []
        if rewrite.exact:
            lines.append(f"exact hit: {rewrite.sources[0].description}")
        else:
            lines.append(
                f"containment hit: residual plan over "
                f"{len(rewrite.sources)} materialised source(s)"
            )
            for source in rewrite.sources:
                lines.append(f"  - {source.description}")
        return "\n".join(lines)


def _compact(op: ops.Operator, limit: int = 72) -> str:
    text = format_compact(op)
    return text if len(text) <= limit else text[: limit - 3] + "..."
