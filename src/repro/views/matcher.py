"""View matching: find the highest-covering materialisation for a plan.

Given a one-shot query's optimised FRA plan, :func:`rewrite_plan` walks it
top-down asking the :class:`~repro.views.catalog.ViewCatalog` for a live
materialisation of each subtree.  Trying the *current* node before
recursing makes every hit the highest-covering one on its path: an exact
whole-plan hit wins over any interior hit, an interior hit close to the
root wins over its own descendants (less residual work, and the residual
operators above it — σ / π / γ / ω / sort-skip-limit and even join
towers — are evaluated over the served tuples).

What is deliberately *not* matched:

* base relations (© / ⇑ / unit) — reading them from a materialisation is
  no cheaper than the graph scan the interpreter would do, and the edges
  child of a transitive join must stay a literal ``GetEdges``;
* ordering operators (sort / skip / limit) — outside the maintainable
  fragment, they can never name a catalog entry themselves, but the walk
  descends through them, which is exactly how a top-k query gets answered
  as a small sort over a maintained view;
* anything whose subtree mentions a parameter bound differently (or left
  unbound) relative to the materialisation — the catalog key pairs the
  structural fingerprint with resolved bindings, so a mismatch is simply
  a key miss here and evaluation falls back to the graph.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from ..algebra import ops
from ..compiler.optimizer import lifted_plan
from .rewriter import RewriteResult, make_view_scan, rebuild_residual

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..compiler.pipeline import CompiledQuery
    from .catalog import ViewCatalog

#: operators the walk descends through without a catalog probe
_ORDERING = (ops.Sort, ops.Skip, ops.Limit)
#: leaves the walk never replaces
_BASE = (ops.Unit, ops.GetVertices, ops.GetEdges, ops.ViewScan)


def rewrite_plan(
    catalog: "ViewCatalog",
    plan: ops.Operator,
    parameters: Mapping[str, Any] | None,
) -> RewriteResult | None:
    """Splice catalog hits into *plan*; ``None`` when nothing matched."""
    parameters = parameters or {}
    sources: list = []

    def visit(op: ops.Operator) -> ops.Operator:
        if isinstance(op, _BASE):
            return op
        if not isinstance(op, _ORDERING):
            source = catalog.lookup(op, parameters)
            if source is not None:
                sources.append(source)
                return make_view_scan(op, source)
        if isinstance(op, ops.TransitiveJoin):
            # the edges child is structural (must stay a GetEdges)
            children = [visit(op.children[0]), op.children[1]]
        else:
            children = [visit(child) for child in op.children]
        return rebuild_residual(op, children)

    rewritten = visit(plan)
    if not sources:
        return None
    return RewriteResult(rewritten, tuple(sources))


def rewrite_query(
    catalog: "ViewCatalog",
    compiled: "CompiledQuery",
    parameters: Mapping[str, Any] | None,
) -> RewriteResult | None:
    """Match a whole compiled query, probing both plan granularities.

    The optimised plan is probed first (root hits and exact-binding
    subplans key on that shape).  With cross-binding sharing active,
    maintained parameterised selections live under *lifted* shapes — the
    σ hoisted above its binding-free core, the form views are registered
    in — so on a miss the equivalent lifted plan is probed too, which is
    how a one-shot per-user query gets served from the shared core's
    partition for its binding.
    """
    rewrite = rewrite_plan(catalog, compiled.plan, parameters)
    if rewrite is not None:
        return rewrite
    if catalog.probes_lifted_plans:
        lifted = lifted_plan(compiled)
        if lifted is not compiled.plan:
            return rewrite_plan(catalog, lifted, parameters)
    return None
