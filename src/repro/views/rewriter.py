"""Plan rewriting: splice materialised scans under residual operators.

Once the matcher has located a catalog entry covering a subtree, the
rewriter replaces that subtree with a :class:`~repro.algebra.ops.ViewScan`
leaf reading the live materialisation, and rebuilds the residual operators
(σ / π / δ / ω / γ / joins / sort-skip-limit) unchanged on top.  The
spliced plan is handed straight to the pull interpreter — it never
re-enters the compiler, so ``ViewScan`` stays invisible to the algebra
stages and their validators.

Positional soundness: the catalog key is the canonical *alpha-equivalent*
fingerprint, and alpha-equivalent FRA subtrees produce identical tuple
layouts by construction (schema positions, not names — the same invariant
cross-view subplan sharing relies on).  The ``ViewScan`` therefore carries
the **query's** subtree schema while serving the **materialisation's**
tuples: names may differ, positions and kinds cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..algebra import ops
from ..compiler.treeutil import rebuild

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .catalog import MaterializedSource


@dataclass(frozen=True)
class RewriteResult:
    """A one-shot plan with materialised scans spliced in."""

    plan: ops.Operator
    sources: tuple[MaterializedSource, ...]

    @property
    def exact(self) -> bool:
        """Whole plan served by one materialisation, no residual work."""
        return isinstance(self.plan, ops.ViewScan)


def make_view_scan(op: ops.Operator, source: MaterializedSource) -> ops.ViewScan:
    """A scan leaf standing in for *op*'s subtree, fed by *source*."""
    return ops.ViewScan(op.schema, source.fetch, source.description)


def rebuild_residual(
    op: ops.Operator, children: list[ops.Operator]
) -> ops.Operator:
    """Reconstruct one residual operator over (possibly spliced) children.

    Delegates to the compiler's tree rebuilder: every residual operator
    recomputes its schema from the new children, and a ``ViewScan`` child
    carries the schema of the subtree it replaced, so the residual tower
    keeps its exact original shape.
    """
    return rebuild(op, children)
