"""Benchmark and test workloads: Train Benchmark, social network, random."""

from . import random_graphs, social, trainbenchmark

__all__ = ["trainbenchmark", "social", "random_graphs"]
