"""Seeded random graphs and update streams for property-based testing.

The differential test harness (incremental view ≡ full recomputation after
arbitrary update sequences) needs adversarial inputs: random labels, random
property churn, edge/vertex lifecycle events, detach-deletes.  This module
provides a reproducible generator for them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from ..graph.graph import PropertyGraph

DEFAULT_LABELS = ("Post", "Comm", "Person")
DEFAULT_TYPES = ("REPLY", "KNOWS", "LIKES")
#: Per-key value pools.  ``lang`` stays string-typed and ``score`` stays
#: numeric so aggregate queries (``sum(p.score)``) are well-typed — mixing
#: types there is a query error in Cypher, not an engine property to test.
#: ``flag`` carries the deliberately-mixed values (incl. None = absent).
DEFAULT_KEY_VALUES: dict[str, tuple] = {
    "lang": ("en", "de", "fr", None),
    "score": (1, 2, 3, 2.5, None),
    "flag": (True, False, "x", 0, None),
}


@dataclass
class RandomGraphConfig:
    labels: tuple[str, ...] = DEFAULT_LABELS
    edge_types: tuple[str, ...] = DEFAULT_TYPES
    key_values: dict[str, tuple] = field(default_factory=lambda: dict(DEFAULT_KEY_VALUES))
    max_labels_per_vertex: int = 2

    @property
    def property_keys(self) -> tuple[str, ...]:
        return tuple(self.key_values)


@dataclass
class RandomGraphState:
    graph: PropertyGraph
    vertices: list[int] = field(default_factory=list)
    edges: list[int] = field(default_factory=list)


def random_graph(
    vertices: int,
    edges: int,
    seed: int = 0,
    config: RandomGraphConfig | None = None,
) -> RandomGraphState:
    """A random property graph with the given vertex/edge counts."""
    cfg = config or RandomGraphConfig()
    rng = random.Random(seed)
    state = RandomGraphState(PropertyGraph())
    for _ in range(vertices):
        _add_vertex(state, rng, cfg)
    for _ in range(edges):
        _add_edge(state, rng, cfg)
    return state


def _random_properties(rng: random.Random, cfg: RandomGraphConfig) -> dict:
    out = {}
    for key, values in cfg.key_values.items():
        if rng.random() < 0.8:
            value = rng.choice(values)
            if value is not None:
                out[key] = value
    return out


def _add_vertex(state, rng: random.Random, cfg: RandomGraphConfig) -> None:
    label_count = rng.randint(0, cfg.max_labels_per_vertex)
    labels = rng.sample(cfg.labels, min(label_count, len(cfg.labels)))
    vertex = state.graph.add_vertex(
        labels=labels, properties=_random_properties(rng, cfg)
    )
    state.vertices.append(vertex)


def _add_edge(state, rng: random.Random, cfg: RandomGraphConfig) -> None:
    if not state.vertices:
        return
    source = rng.choice(state.vertices)
    target = rng.choice(state.vertices)
    edge = state.graph.add_edge(
        source,
        target,
        rng.choice(cfg.edge_types),
        properties=_random_properties(rng, cfg),
    )
    state.edges.append(edge)


def random_updates(
    state: RandomGraphState,
    operations: int,
    seed: int = 0,
    config: RandomGraphConfig | None = None,
) -> Iterator[str]:
    """Apply a random update stream in place; yields each operation kind.

    Covers every event type the engine handles: vertex/edge add/remove
    (incl. detach-delete), label add/remove, vertex/edge property set and
    removal (``None``).
    """
    cfg = config or RandomGraphConfig()
    rng = random.Random(seed)
    graph = state.graph
    for _ in range(operations):
        roll = rng.random()
        if roll < 0.22 or len(state.vertices) < 2:
            _add_vertex(state, rng, cfg)
            yield "add_vertex"
        elif roll < 0.42:
            _add_edge(state, rng, cfg)
            yield "add_edge"
        elif roll < 0.52 and state.edges:
            edge = rng.choice(state.edges)
            state.edges.remove(edge)
            graph.remove_edge(edge)
            yield "remove_edge"
        elif roll < 0.64:
            vertex = rng.choice(state.vertices)
            key = rng.choice(cfg.property_keys)
            graph.set_vertex_property(vertex, key, rng.choice(cfg.key_values[key]))
            yield "set_vertex_property"
        elif roll < 0.72 and state.edges:
            edge = rng.choice(state.edges)
            key = rng.choice(cfg.property_keys)
            graph.set_edge_property(edge, key, rng.choice(cfg.key_values[key]))
            yield "set_edge_property"
        elif roll < 0.82:
            vertex = rng.choice(state.vertices)
            graph.add_label(vertex, rng.choice(cfg.labels))
            yield "add_label"
        elif roll < 0.90:
            vertex = rng.choice(state.vertices)
            graph.remove_label(vertex, rng.choice(cfg.labels))
            yield "remove_label"
        else:
            vertex = rng.choice(state.vertices)
            incident = set(graph.incident_edges(vertex))
            graph.remove_vertex(vertex, detach=True)
            state.vertices.remove(vertex)
            state.edges = [e for e in state.edges if e not in incident]
            yield "remove_vertex"
