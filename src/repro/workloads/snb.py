"""LDBC-SNB-inspired workload (paper reference [17]).

The paper grounds its motivation in the LDBC Social Network Benchmark
domain; the running example (Posts and transitively replying Comments in
the same language) is drawn from it.  This module provides a scaled-down
generator for the SNB core schema —

    Person  —KNOWS→  Person
    Person  —LIKES→  Post|Comment
    Forum   —HAS_MEMBER→ Person,  Forum —CONTAINER_OF→ Post
    Post    ←REPLY_OF— Comment ←REPLY_OF— Comment …
    Message —HAS_CREATOR→ Person,  Message —HAS_TAG→ Tag

— plus a query mix adapted from the SNB interactive workload to the
paper's incrementally maintainable fragment (bags, no ORDER BY/top-k; the
SNB queries' ordering/limit decoration is dropped, their pattern cores are
kept), and a seeded update stream mirroring SNB's insert-heavy interactive
updates with deletes mixed in.

Everything is deterministic per seed so benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.graph import PropertyGraph

LANGS = ("en", "de", "fr", "hu", "es")
TAG_NAMES = (
    "graphs", "databases", "cypher", "rete", "ivm",
    "benchmarks", "papers", "python", "music", "travel",
)

#: SNB-inspired queries, adapted to the maintainable fragment.  Keys are
#: short stable identifiers used by tests and the E12 bench table.
SNB_QUERIES: dict[str, str] = {
    # IS1: person profile attributes
    "is1_profile": (
        "MATCH (p:Person) WHERE p.name = $name "
        "RETURN p.name AS name, p.city AS city"
    ),
    # IS3: a person's friends
    "is3_friends": (
        "MATCH (p:Person)-[:KNOWS]->(f:Person) "
        "RETURN p.name AS person, f.name AS friend"
    ),
    # IC1-core: friends and friends-of-friends (2 hops, distinct)
    "ic1_fof": (
        "MATCH (p:Person)-[:KNOWS*1..2]->(f:Person) "
        "WHERE p.name = $name AND p <> f "
        "RETURN DISTINCT f.name AS friend"
    ),
    # IC2-core: recent messages by friends (recency modelled as a property filter)
    "ic2_friend_messages": (
        "MATCH (p:Person)-[:KNOWS]->(f:Person)<-[:HAS_CREATOR]-(m:Post) "
        "WHERE m.recent = TRUE "
        "RETURN f.name AS friend, m.content AS content"
    ),
    # IC4-core: tags on posts created by friends
    "ic4_friend_tags": (
        "MATCH (p:Person)-[:KNOWS]->(f:Person)<-[:HAS_CREATOR]-(m:Post)"
        "-[:HAS_TAG]->(t:Tag) "
        "RETURN t.name AS tag, count(*) AS posts"
    ),
    # IC5-core: forums whose members created contained posts
    "ic5_forum_posts": (
        "MATCH (f:Forum)-[:HAS_MEMBER]->(pe:Person)"
        "<-[:HAS_CREATOR]-(po:Post)<-[:CONTAINER_OF]-(f) "
        "RETURN f.title AS forum, count(*) AS posts"
    ),
    # IC7-core: who likes a person's messages
    "ic7_likers": (
        "MATCH (fan:Person)-[:LIKES]->(m:Post)-[:HAS_CREATOR]->(auth:Person) "
        "RETURN auth.name AS author, count(*) AS likes"
    ),
    # IC8-core: replies (direct) to a person's posts
    "ic8_replies": (
        "MATCH (c:Comment)-[:REPLY_OF]->(m:Post)-[:HAS_CREATOR]->(p:Person) "
        "RETURN p.name AS author, count(*) AS replies"
    ),
    # the paper's running example on the SNB schema: whole reply threads
    # in the post's language, with the path returned
    "thread_same_lang": (
        "MATCH t = (m:Post)<-[:REPLY_OF*]-(c:Comment) "
        "WHERE m.lang = c.lang "
        "RETURN m, t"
    ),
}

#: Queries outside the fragment (ordering/top-k) — evaluated one-shot
#: in the bench to document the paper's trade-off on SNB shapes.
SNB_TOPK_QUERIES: dict[str, str] = {
    "topk_liked_posts": (
        "MATCH (fan:Person)-[:LIKES]->(m:Post) "
        "RETURN m.content AS content, count(*) AS likes "
        "ORDER BY likes DESC LIMIT 3"
    ),
}


@dataclass
class SnbNetwork:
    """A generated SNB-style network plus id registries for updates."""

    graph: PropertyGraph
    persons: list[int] = field(default_factory=list)
    forums: list[int] = field(default_factory=list)
    tags: list[int] = field(default_factory=list)
    posts: list[int] = field(default_factory=list)
    comments: list[int] = field(default_factory=list)
    #: message id → language (for reply generation)
    lang_of: dict[int, str] = field(default_factory=dict)


def generate_snb(
    persons: int = 20,
    forums: int = 4,
    posts_per_forum: int = 8,
    comments_per_post: int = 4,
    knows_degree: int = 3,
    seed: int = 1,
) -> SnbNetwork:
    """Generate a deterministic SNB-style social network."""
    rng = random.Random(seed)
    graph = PropertyGraph()
    net = SnbNetwork(graph)

    for name in TAG_NAMES:
        net.tags.append(graph.add_vertex(labels=["Tag"], properties={"name": name}))

    for index in range(persons):
        person = graph.add_vertex(
            labels=["Person"],
            properties={
                "name": f"person-{index}",
                "city": f"city-{index % 5}",
            },
        )
        net.persons.append(person)
    for person in net.persons:
        for friend in rng.sample(net.persons, min(knows_degree, persons)):
            if friend != person:
                graph.add_edge(person, friend, "KNOWS")

    for forum_index in range(forums):
        forum = graph.add_vertex(
            labels=["Forum"], properties={"title": f"forum-{forum_index}"}
        )
        net.forums.append(forum)
        members = rng.sample(net.persons, max(2, persons // forums))
        for member in members:
            graph.add_edge(forum, member, "HAS_MEMBER")
        for _ in range(posts_per_forum):
            creator = rng.choice(members)
            lang = rng.choice(LANGS)
            post = graph.add_vertex(
                labels=["Post"],
                properties={
                    "lang": lang,
                    "content": f"post-{len(net.posts)}",
                    "recent": rng.random() < 0.5,
                },
            )
            net.posts.append(post)
            net.lang_of[post] = lang
            graph.add_edge(forum, post, "CONTAINER_OF")
            graph.add_edge(post, creator, "HAS_CREATOR")
            for tag in rng.sample(net.tags, rng.randint(1, 3)):
                graph.add_edge(post, tag, "HAS_TAG")
            parent = post
            for _ in range(comments_per_post):
                parent = _add_comment(net, rng, parent)

    # likes: each person likes a few random posts
    for person in net.persons:
        for post in rng.sample(net.posts, min(3, len(net.posts))):
            graph.add_edge(person, post, "LIKES")
    return net


def _add_comment(net: SnbNetwork, rng: random.Random, parent: int) -> int:
    """Append one comment replying to *parent*; same-lang with bias 0.7."""
    graph = net.graph
    parent_lang = net.lang_of.get(parent, LANGS[0])
    lang = parent_lang if rng.random() < 0.7 else rng.choice(LANGS)
    comment = graph.add_vertex(
        labels=["Comment"],
        properties={"lang": lang, "content": f"comment-{len(net.comments)}"},
    )
    net.comments.append(comment)
    net.lang_of[comment] = lang
    graph.add_edge(comment, parent, "REPLY_OF")
    graph.add_edge(comment, rng.choice(net.persons), "HAS_CREATOR")
    return comment


def update_stream(net: SnbNetwork, operations: int = 100, seed: int = 2):
    """Yield ``operations`` SNB-interactive-style update thunks.

    Mix (weights roughly following SNB interactive): new comments 40%,
    new likes 25%, new posts 10%, membership changes 10%, language edits
    10%, unlikes/deletes 5%.  Each yielded item is ``(kind, callable)``;
    calling it applies the update to ``net.graph``.
    """
    rng = random.Random(seed)
    graph = net.graph

    def new_comment():
        parent = rng.choice(net.posts + net.comments)
        _add_comment(net, rng, parent)

    def new_like():
        person = rng.choice(net.persons)
        post = rng.choice(net.posts)
        graph.add_edge(person, post, "LIKES")

    def new_post():
        forum = rng.choice(net.forums)
        creator = rng.choice(net.persons)
        lang = rng.choice(LANGS)
        post = graph.add_vertex(
            labels=["Post"],
            properties={
                "lang": lang,
                "content": f"post-{len(net.posts)}",
                "recent": True,
            },
        )
        net.posts.append(post)
        net.lang_of[post] = lang
        graph.add_edge(forum, post, "CONTAINER_OF")
        graph.add_edge(post, creator, "HAS_CREATOR")

    def membership_change():
        forum = rng.choice(net.forums)
        person = rng.choice(net.persons)
        existing = [
            e
            for e in graph.out_edges(forum, "HAS_MEMBER")
            if graph.target_of(e) == person
        ]
        if existing:
            graph.remove_edge(existing[0])
        else:
            graph.add_edge(forum, person, "HAS_MEMBER")

    def lang_edit():
        message = rng.choice(net.posts + net.comments)
        lang = rng.choice(LANGS)
        net.lang_of[message] = lang
        graph.set_vertex_property(message, "lang", lang)

    def unlike():
        likes = list(graph.edges("LIKES"))
        if likes:
            graph.remove_edge(rng.choice(likes))

    weighted = (
        [("comment", new_comment)] * 40
        + [("like", new_like)] * 25
        + [("post", new_post)] * 10
        + [("membership", membership_change)] * 10
        + [("lang", lang_edit)] * 10
        + [("unlike", unlike)] * 5
    )
    for _ in range(operations):
        yield rng.choice(weighted)
