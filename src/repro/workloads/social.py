"""Social-network workload — the paper's running-example domain.

The paper's motivating example (§2) is drawn from an LDBC SNB-like social
network (paper ref [17]): ``Post``s with transitive ``REPLY`` threads of
``Comm``ents, each message carrying a ``lang`` property.  This module
generates such networks plus a live update stream, so the running-example
query (and richer SNB-flavoured queries) can be benchmarked under
maintenance.

Schema:

* ``Person {name}`` —KNOWS→ ``Person``
* ``Post {lang, content}`` —HAS_CREATOR→ ``Person``
* ``Comm {lang}`` —REPLY→ ``Post``/``Comm`` (reply trees hang *off* the
  message they reply to: edge direction follows the paper's example, i.e.
  parent —REPLY→ child)
* ``Person`` —LIKES→ ``Post``
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from ..graph.graph import PropertyGraph

LANGS = ("en", "de", "fr", "es", "hu")

#: The paper's running example query, verbatim (modulo whitespace).
RUNNING_EXAMPLE_QUERY = (
    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) "
    "WHERE p.lang = c.lang "
    "RETURN p, t"
)

#: Companion queries for the social workload benchmarks.
QUERIES: dict[str, str] = {
    "running_example": RUNNING_EXAMPLE_QUERY,
    "thread_sizes": (
        "MATCH (p:Post)-[:REPLY*]->(c:Comm) "
        "RETURN p, count(c) AS replies"
    ),
    "posts_per_person": (
        "MATCH (person:Person)<-[:HAS_CREATOR]-(post:Post) "
        "RETURN person, count(post) AS posts"
    ),
    "popular_posts": (
        "MATCH (fan:Person)-[:LIKES]->(post:Post) "
        "RETURN post, count(fan) AS fans"
    ),
    "friends_langs": (
        "MATCH (a:Person)-[:KNOWS]->(b:Person)<-[:HAS_CREATOR]-(post:Post) "
        "RETURN a, collect(DISTINCT post.lang) AS langs"
    ),
}


@dataclass
class SocialNetwork:
    """A generated social network plus id registries for the update stream."""

    graph: PropertyGraph
    persons: list[int] = field(default_factory=list)
    posts: list[int] = field(default_factory=list)
    comments: list[int] = field(default_factory=list)
    #: message id → ids of direct replies (for subtree deletes)
    replies_of: dict[int, list[int]] = field(default_factory=dict)


def generate_social(
    persons: int = 20,
    posts_per_person: int = 2,
    comments_per_post: int = 5,
    reply_depth: float = 0.6,
    seed: int = 1,
) -> SocialNetwork:
    """Generate a social network.

    ``reply_depth`` is the probability that a new comment replies to an
    existing comment rather than to the post itself, producing the deep
    threads the running example exercises.
    """
    rng = random.Random(seed)
    graph = PropertyGraph()
    net = SocialNetwork(graph)

    for index in range(persons):
        person = graph.add_vertex(
            labels=["Person"], properties={"name": f"person-{index}"}
        )
        net.persons.append(person)

    for a in net.persons:
        for b in rng.sample(net.persons, min(3, len(net.persons))):
            if a != b:
                graph.add_edge(a, b, "KNOWS")

    for person in net.persons:
        for _ in range(posts_per_person):
            post = graph.add_vertex(
                labels=["Post"],
                properties={"lang": rng.choice(LANGS), "content": "..."},
            )
            net.posts.append(post)
            graph.add_edge(post, person, "HAS_CREATOR")
            thread: list[int] = [post]
            for _ in range(comments_per_post):
                if len(thread) > 1 and rng.random() < reply_depth:
                    parent = rng.choice(thread[1:])
                else:
                    parent = post
                comment = add_comment(net, parent, rng.choice(LANGS))
                thread.append(comment)

    for person in net.persons:
        for post in rng.sample(net.posts, min(3, len(net.posts))):
            graph.add_edge(person, post, "LIKES")

    return net


def add_comment(net: SocialNetwork, parent: int, lang: str) -> int:
    """Attach a new comment replying to *parent* (post or comment)."""
    comment = net.graph.add_vertex(labels=["Comm"], properties={"lang": lang})
    net.comments.append(comment)
    net.graph.add_edge(parent, comment, "REPLY")
    net.replies_of.setdefault(parent, []).append(comment)
    return comment


def delete_comment_subtree(net: SocialNetwork, comment: int) -> int:
    """Delete a comment and its entire reply subtree; returns count removed."""
    removed = 0
    for child in list(net.replies_of.get(comment, ())):
        removed += delete_comment_subtree(net, child)
    net.replies_of.pop(comment, None)
    if net.graph.has_vertex(comment):
        net.graph.remove_vertex(comment, detach=True)
        removed += 1
    if comment in net.comments:
        net.comments.remove(comment)
    for children in net.replies_of.values():
        if comment in children:
            children.remove(comment)
    return removed


def update_stream(
    net: SocialNetwork, operations: int, seed: int = 7
) -> Iterator[str]:
    """Apply a mixed update stream; yields the kind of each operation.

    Mix (roughly SNB-interactive-flavoured): 50% new comments, 15% language
    edits, 15% likes, 10% comment deletions, 10% new posts.
    """
    rng = random.Random(seed)
    graph = net.graph
    for _ in range(operations):
        roll = rng.random()
        if roll < 0.50 or not net.comments:
            parent = rng.choice(net.posts + net.comments)
            add_comment(net, parent, rng.choice(LANGS))
            yield "add_comment"
        elif roll < 0.65:
            message = rng.choice(net.posts + net.comments)
            graph.set_vertex_property(message, "lang", rng.choice(LANGS))
            yield "change_lang"
        elif roll < 0.80:
            person = rng.choice(net.persons)
            post = rng.choice(net.posts)
            graph.add_edge(person, post, "LIKES")
            yield "like"
        elif roll < 0.90 and net.comments:
            delete_comment_subtree(net, rng.choice(net.comments))
            yield "delete_subtree"
        else:
            person = rng.choice(net.persons)
            post = graph.add_vertex(
                labels=["Post"],
                properties={"lang": rng.choice(LANGS), "content": "..."},
            )
            net.posts.append(post)
            graph.add_edge(post, person, "HAS_CREATOR")
            yield "add_post"
