"""Train Benchmark workload (paper ref [30]).

The Train Benchmark is the continuous model-validation benchmark by
Szárnyas et al. that grounds the paper's evaluation methodology: a railway
network model, six well-formedness constraint queries, and two update
scenarios — **inject** (introduce faults) and **repair** (fix them) — with
query re-evaluation after every transformation batch.

This module reproduces it on our substrate:

* a seeded generator for railway models of parameterised size with the
  benchmark's error percentages,
* the six standard queries expressed in the supported openCypher fragment
  (negative application conditions use ``OPTIONAL MATCH … WHERE x IS
  NULL``, the fragment's antijoin idiom),
* inject and repair transformation streams for each query.

Schema (vertex labels / edge types / properties):

* ``Route`` —entry→ ``Semaphore``, —exit→ ``Semaphore``,
  —follows→ ``SwitchPosition``, —requires→ ``Sensor``
* ``SwitchPosition`` —target→ ``Switch``; ``position`` property
* ``Switch`` (also ``TrackElement``); ``currentPosition`` property
* ``Segment`` (also ``TrackElement``); ``length`` property
* ``TrackElement`` —connectsTo→ ``TrackElement``, —monitoredBy→ ``Sensor``
* ``Semaphore``; ``signal`` property
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..graph.graph import PropertyGraph

SIGNAL_GO = "GO"
SIGNAL_STOP = "STOP"
POSITIONS = ("STRAIGHT", "DIVERGING")

#: Error injection rates at generation time, mirroring the Train Benchmark's
#: published defaults (a few percent of instances are born invalid so the
#: batch phase already returns matches).
ERROR_RATES = {
    "PosLength": 0.05,
    "SwitchMonitored": 0.05,
    "RouteSensor": 0.10,
    "SwitchSet": 0.08,
    "ConnectedSegments": 0.05,
    "SemaphoreNeighbor": 0.07,
}


@dataclass
class RailwayModel:
    """A generated railway instance plus id registries for transformations."""

    graph: PropertyGraph
    routes: list[int] = field(default_factory=list)
    semaphores: list[int] = field(default_factory=list)
    switches: list[int] = field(default_factory=list)
    switch_positions: list[int] = field(default_factory=list)
    segments: list[int] = field(default_factory=list)
    sensors: list[int] = field(default_factory=list)
    #: (route, sensor) pairs whose requires edge was removed at generation
    missing_requires: list[tuple[int, int]] = field(default_factory=list)
    #: switches left unmonitored at generation
    unmonitored_switches: list[int] = field(default_factory=list)


def generate_railway(
    routes: int = 20, seed: int = 1, error_rates: dict[str, float] | None = None
) -> RailwayModel:
    """Generate a railway model with ``routes`` routes.

    Size scales linearly: each route has 2 semaphores, ~4 switch positions
    (with switches and sensors) and ~8 connected segments, so vertex count
    is roughly ``20 × routes``.
    """
    rates = dict(ERROR_RATES)
    if error_rates:
        rates.update(error_rates)
    rng = random.Random(seed)
    graph = PropertyGraph()
    model = RailwayModel(graph)

    previous_exit: int | None = None
    previous_last_segment: int | None = None
    for _ in range(routes):
        # Routes chain: each route's entry semaphore is the previous
        # route's exit semaphore (that is what SemaphoreNeighbor checks).
        if previous_exit is None:
            entry = graph.add_vertex(
                labels=["Semaphore"],
                properties={"signal": rng.choice((SIGNAL_GO, SIGNAL_STOP))},
            )
            model.semaphores.append(entry)
        else:
            entry = previous_exit
        exit_ = graph.add_vertex(
            labels=["Semaphore"],
            properties={"signal": rng.choice((SIGNAL_GO, SIGNAL_STOP))},
        )
        model.semaphores.append(exit_)
        route = graph.add_vertex(labels=["Route"], properties={"active": True})
        model.routes.append(route)
        if not (previous_exit is not None and rng.random() < rates["SemaphoreNeighbor"]):
            graph.add_edge(route, entry, "entry")
        graph.add_edge(route, exit_, "exit")
        previous_exit = exit_

        # switches followed by this route
        for _ in range(rng.randint(3, 5)):
            position = rng.choice(POSITIONS)
            switch_position = graph.add_vertex(
                labels=["SwitchPosition"], properties={"position": position}
            )
            model.switch_positions.append(switch_position)
            graph.add_edge(route, switch_position, "follows")

            if rng.random() < rates["SwitchSet"]:
                current = (
                    POSITIONS[0] if position == POSITIONS[1] else POSITIONS[1]
                )
            else:
                current = position
            switch = graph.add_vertex(
                labels=["Switch", "TrackElement"],
                properties={"currentPosition": current},
            )
            model.switches.append(switch)
            graph.add_edge(switch_position, switch, "target")

            sensor = graph.add_vertex(labels=["Sensor"])
            model.sensors.append(sensor)
            if rng.random() < rates["SwitchMonitored"]:
                model.unmonitored_switches.append(switch)
            else:
                graph.add_edge(switch, sensor, "monitoredBy")
            if rng.random() < rates["RouteSensor"]:
                model.missing_requires.append((route, sensor))
            else:
                graph.add_edge(route, sensor, "requires")

        # a chain of connected segments sharing one sensor, required by the
        # route; consecutive routes' chains are linked so SemaphoreNeighbor's
        # cross-route pattern has instances
        chain_sensor = graph.add_vertex(labels=["Sensor"])
        model.sensors.append(chain_sensor)
        graph.add_edge(route, chain_sensor, "requires")
        previous = None
        # ConnectedSegments flags runs of *six* same-sensor segments, so a
        # clean chain has five; the error rate occasionally emits six.
        chain_length = 6 if rng.random() < rates["ConnectedSegments"] else 5
        for position_in_chain in range(chain_length):
            if rng.random() < rates["PosLength"]:
                length = 0
            else:
                length = rng.randint(1, 100)
            segment = graph.add_vertex(
                labels=["Segment", "TrackElement"], properties={"length": length}
            )
            model.segments.append(segment)
            graph.add_edge(segment, chain_sensor, "monitoredBy")
            if previous is None and previous_last_segment is not None:
                graph.add_edge(previous_last_segment, segment, "connectsTo")
            if previous is not None:
                graph.add_edge(previous, segment, "connectsTo")
            previous = segment
        previous_last_segment = previous

    return model


# ---------------------------------------------------------------------------
# the six constraint queries
# ---------------------------------------------------------------------------

#: Query name → openCypher text.  Negative application conditions are
#: expressed with ``OPTIONAL MATCH`` + ``IS NULL``, which compiles to a
#: left outer join + selection — an incrementally maintainable antijoin.
QUERIES: dict[str, str] = {
    "PosLength": (
        "MATCH (s:Segment) WHERE s.length <= 0 RETURN s"
    ),
    "SwitchMonitored": (
        "MATCH (sw:Switch) "
        "OPTIONAL MATCH (sw)-[m:monitoredBy]->(s:Sensor) "
        "WITH sw, m WHERE m IS NULL "
        "RETURN sw"
    ),
    "RouteSensor": (
        "MATCH (r:Route)-[:follows]->(swp:SwitchPosition)"
        "-[:target]->(sw:Switch)-[:monitoredBy]->(s:Sensor) "
        "OPTIONAL MATCH (r)-[req:requires]->(s) "
        "WITH r, s, swp, sw, req WHERE req IS NULL "
        "RETURN r, s, swp, sw"
    ),
    "SwitchSet": (
        "MATCH (sem:Semaphore)<-[:entry]-(r:Route)"
        "-[:follows]->(swp:SwitchPosition)-[:target]->(sw:Switch) "
        "WHERE sem.signal = 'GO' AND sw.currentPosition <> swp.position "
        "RETURN sem, r, swp, sw"
    ),
    "ConnectedSegments": (
        "MATCH (s:Sensor)<-[:monitoredBy]-(s1:Segment)-[:connectsTo]->"
        "(s2:Segment)-[:connectsTo]->(s3:Segment)-[:connectsTo]->"
        "(s4:Segment)-[:connectsTo]->(s5:Segment)-[:connectsTo]->(s6:Segment), "
        "(s2)-[:monitoredBy]->(s), (s3)-[:monitoredBy]->(s), "
        "(s4)-[:monitoredBy]->(s), (s5)-[:monitoredBy]->(s), "
        "(s6)-[:monitoredBy]->(s) "
        "RETURN s, s1, s2, s3, s4, s5, s6"
    ),
    "SemaphoreNeighbor": (
        "MATCH (r1:Route)-[:exit]->(sem:Semaphore), "
        "(r1)-[:requires]->(s1:Sensor)<-[:monitoredBy]-(te1:TrackElement)"
        "-[:connectsTo]->(te2:TrackElement)-[:monitoredBy]->(s2:Sensor)"
        "<-[:requires]-(r2:Route) "
        "OPTIONAL MATCH (r2)-[entry:entry]->(sem) "
        "WITH r1, r2, sem, s1, s2, te1, te2, entry "
        "WHERE entry IS NULL AND r1 <> r2 "
        "RETURN sem, r1, r2, s1, s2, te1, te2"
    ),
}


# ---------------------------------------------------------------------------
# transformation phases (inject faults / repair matches)
# ---------------------------------------------------------------------------


def inject(model: RailwayModel, query: str, count: int, rng: random.Random) -> int:
    """Introduce up to *count* new violations for *query*; returns how many
    elementary operations were applied."""
    graph = model.graph
    applied = 0
    if query == "PosLength":
        for segment in rng.sample(model.segments, min(count, len(model.segments))):
            graph.set_vertex_property(segment, "length", 0)
            applied += 1
    elif query == "SwitchMonitored":
        candidates = [
            sw
            for sw in model.switches
            if any(True for _ in graph.out_edges(sw, "monitoredBy"))
        ]
        for switch in rng.sample(candidates, min(count, len(candidates))):
            for edge in list(graph.out_edges(switch, "monitoredBy")):
                graph.remove_edge(edge)
                applied += 1
    elif query == "RouteSensor":
        candidates = []
        for route in model.routes:
            candidates.extend(list(graph.out_edges(route, "requires")))
        for edge in rng.sample(candidates, min(count, len(candidates))):
            route, sensor = graph.endpoints(edge)
            graph.remove_edge(edge)
            model.missing_requires.append((route, sensor))
            applied += 1
    elif query == "SwitchSet":
        for switch in rng.sample(model.switches, min(count, len(model.switches))):
            # guarantee a violation: mismatch the switch against its
            # position and make sure the route's entry semaphore shows GO
            position_edges = list(graph.in_edges(switch, "target"))
            if not position_edges:
                continue
            switch_position = graph.source_of(position_edges[0])
            wanted = graph.vertex_property(switch_position, "position")
            flipped = POSITIONS[0] if wanted == POSITIONS[1] else POSITIONS[1]
            graph.set_vertex_property(switch, "currentPosition", flipped)
            for follows in graph.in_edges(switch_position, "follows"):
                route = graph.source_of(follows)
                for entry in graph.out_edges(route, "entry"):
                    graph.set_vertex_property(
                        graph.target_of(entry), "signal", SIGNAL_GO
                    )
            applied += 1
    elif query == "ConnectedSegments":
        # Insert an extra segment into a chain (creating a 7-long run).
        chains = [
            s
            for s in model.segments
            if any(True for _ in graph.out_edges(s, "connectsTo"))
        ]
        for segment in rng.sample(chains, min(count, len(chains))):
            sensor = next(iter(graph.out_edges(segment, "monitoredBy")), None)
            nxt_edge = next(iter(graph.out_edges(segment, "connectsTo")), None)
            if sensor is None or nxt_edge is None:
                continue
            sensor_vertex = graph.target_of(sensor)
            nxt = graph.target_of(nxt_edge)
            extra = graph.add_vertex(
                labels=["Segment", "TrackElement"],
                properties={"length": rng.randint(1, 100)},
            )
            model.segments.append(extra)
            graph.add_edge(extra, sensor_vertex, "monitoredBy")
            graph.remove_edge(nxt_edge)
            graph.add_edge(segment, extra, "connectsTo")
            graph.add_edge(extra, nxt, "connectsTo")
            applied += 1
    elif query == "SemaphoreNeighbor":
        candidates = []
        for route in model.routes:
            candidates.extend(list(graph.out_edges(route, "entry")))
        for edge in rng.sample(candidates, min(count, len(candidates))):
            graph.remove_edge(edge)
            applied += 1
    else:
        raise ValueError(f"unknown query {query!r}")
    return applied


def repair(
    model: RailwayModel,
    query: str,
    matches: list[tuple],
    count: int,
    rng: random.Random,
) -> int:
    """Fix up to *count* violations found by *query* (Train Benchmark's
    repair phase operates on the previous revalidation's match set)."""
    if query not in QUERIES:
        raise ValueError(f"unknown query {query!r}")
    graph = model.graph
    todo = matches[:count] if len(matches) > count else list(matches)
    applied = 0
    for match in todo:
        if query == "PosLength":
            (segment,) = match[:1]
            if graph.has_vertex(segment):
                graph.set_vertex_property(segment, "length", rng.randint(1, 100))
                applied += 1
        elif query == "SwitchMonitored":
            (switch,) = match[:1]
            if graph.has_vertex(switch):
                sensor = graph.add_vertex(labels=["Sensor"])
                model.sensors.append(sensor)
                graph.add_edge(switch, sensor, "monitoredBy")
                applied += 1
        elif query == "RouteSensor":
            route, sensor = match[0], match[1]
            if graph.has_vertex(route) and graph.has_vertex(sensor):
                graph.add_edge(route, sensor, "requires")
                applied += 1
        elif query == "SwitchSet":
            switch_position, switch = match[2], match[3]
            if graph.has_vertex(switch) and graph.has_vertex(switch_position):
                graph.set_vertex_property(
                    switch,
                    "currentPosition",
                    graph.vertex_property(switch_position, "position"),
                )
                applied += 1
        elif query == "ConnectedSegments":
            # remove the middle segment from the over-long run
            segment2 = match[2]
            if graph.has_vertex(segment2):
                ins = [graph.source_of(e) for e in graph.in_edges(segment2, "connectsTo")]
                outs = [graph.target_of(e) for e in graph.out_edges(segment2, "connectsTo")]
                graph.remove_vertex(segment2, detach=True)
                model.segments = [s for s in model.segments if s != segment2]
                for a in ins:
                    for b in outs:
                        graph.add_edge(a, b, "connectsTo")
                applied += 1
        elif query == "SemaphoreNeighbor":
            semaphore, _, route2 = match[0], match[1], match[2]
            if graph.has_vertex(route2) and graph.has_vertex(semaphore):
                graph.add_edge(route2, semaphore, "entry")
                applied += 1
        else:
            raise ValueError(f"unknown query {query!r}")
    return applied


TransformationFn = Callable[[RailwayModel, str, int, random.Random], int]
