"""Unit tests for incremental aggregate state machines (insert AND remove —
the deletion path is what distinguishes IVM aggregation)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra.expressions import (
    AggregateSpec,
    AvgAggregator,
    CollectAggregator,
    CountAggregator,
    DistinctAggregator,
    MaxAggregator,
    MinAggregator,
    SumAggregator,
)
from repro.errors import CompilerError, EvaluationError
from repro.graph.values import ListValue


class TestCount:
    def test_counts_non_null(self):
        agg = CountAggregator()
        agg.insert(1, 2)
        agg.insert(None, 5)  # nulls don't count
        assert agg.result() == 2
        agg.remove(1, 1)
        assert agg.result() == 1

    def test_empty_is_zero(self):
        assert CountAggregator().result() == 0


class TestSumAvg:
    def test_sum(self):
        agg = SumAggregator()
        agg.insert(2, 3)
        agg.insert(0.5, 2)
        assert agg.result() == 7.0
        agg.remove(2, 3)
        assert agg.result() == 1.0

    def test_sum_of_nothing_is_zero(self):
        assert SumAggregator().result() == 0

    def test_sum_rejects_non_numbers(self):
        with pytest.raises(EvaluationError):
            SumAggregator().insert("x", 1)

    def test_avg(self):
        agg = AvgAggregator()
        agg.insert(1, 1)
        agg.insert(3, 1)
        assert agg.result() == 2.0
        agg.remove(3, 1)
        assert agg.result() == 1.0

    def test_avg_of_nothing_is_null(self):
        assert AvgAggregator().result() is None

    def test_float_drift_reset_on_empty(self):
        agg = SumAggregator()
        agg.insert(0.1, 1)
        agg.remove(0.1, 1)
        assert agg.result() == 0


class TestMinMax:
    def test_min_max_track_deletions(self):
        low, high = MinAggregator(), MaxAggregator()
        for value in (5, 1, 9):
            low.insert(value, 1)
            high.insert(value, 1)
        assert low.result() == 1
        assert high.result() == 9
        low.remove(1, 1)
        high.remove(9, 1)
        assert low.result() == 5
        assert high.result() == 5

    def test_empty_is_null(self):
        assert MinAggregator().result() is None

    def test_duplicates_counted(self):
        agg = MinAggregator()
        agg.insert(1, 2)
        agg.remove(1, 1)
        assert agg.result() == 1  # one copy remains
        agg.remove(1, 1)
        assert agg.result() is None

    def test_underflow_raises(self):
        agg = MinAggregator()
        agg.insert(1, 1)
        with pytest.raises(EvaluationError):
            agg.remove(1, 2)

    def test_strings(self):
        agg = MaxAggregator()
        agg.insert("a", 1)
        agg.insert("b", 1)
        assert agg.result() == "b"


class TestCollect:
    def test_collect_is_canonically_ordered_bag(self):
        agg = CollectAggregator()
        agg.insert(3, 1)
        agg.insert(1, 2)
        assert agg.result() == ListValue((1, 1, 3))
        agg.remove(1, 1)
        assert agg.result() == ListValue((1, 3))

    def test_nulls_skipped(self):
        agg = CollectAggregator()
        agg.insert(None, 3)
        assert agg.result() == ListValue(())


class TestDistinct:
    def test_distinct_count(self):
        agg = DistinctAggregator(CountAggregator())
        agg.insert("a", 1)
        agg.insert("a", 2)
        agg.insert("b", 1)
        assert agg.result() == 2
        agg.remove("a", 3)
        assert agg.result() == 1

    def test_distinct_sum(self):
        agg = DistinctAggregator(SumAggregator())
        agg.insert(5, 10)
        agg.insert(3, 1)
        assert agg.result() == 8

    def test_distinct_underflow(self):
        agg = DistinctAggregator(CountAggregator())
        with pytest.raises(EvaluationError):
            agg.remove("never", 1)

    @given(st.lists(st.integers(0, 5), max_size=30))
    def test_distinct_matches_set_semantics(self, values):
        agg = DistinctAggregator(CountAggregator())
        for value in values:
            agg.insert(value, 1)
        assert agg.result() == len(set(values))


class TestAggregateSpec:
    def test_factory(self):
        spec = AggregateSpec("sum", None, False, "out")
        assert isinstance(spec.make_aggregator(), SumAggregator)

    def test_distinct_wrapping(self):
        spec = AggregateSpec("count", None, True, "out")
        assert isinstance(spec.make_aggregator(), DistinctAggregator)

    def test_unknown_function(self):
        with pytest.raises(CompilerError):
            AggregateSpec("median", None, False, "out").make_aggregator()


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 3)),
        min_size=0,
        max_size=25,
    )
)
def test_insert_remove_round_trip_restores_initial_state(operations):
    """Inserting a bag then removing it must restore every aggregate to
    its empty-state result (the IVM reversibility invariant)."""
    aggregators = [
        CountAggregator(),
        SumAggregator(),
        AvgAggregator(),
        MinAggregator(),
        MaxAggregator(),
        CollectAggregator(),
        DistinctAggregator(CountAggregator()),
    ]
    empty = [a.result() for a in aggregators]
    for value, multiplicity in operations:
        for aggregator in aggregators:
            aggregator.insert(value, multiplicity)
    for value, multiplicity in operations:
        for aggregator in aggregators:
            aggregator.remove(value, multiplicity)
    assert [a.result() for a in aggregators] == empty
