"""Unit tests for expression compilation: 3-valued logic, arithmetic,
functions — the semantics the whole engine rests on."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra.expressions import (
    EvalContext,
    arith_binary,
    compile_expr,
    cypher_in,
    ternary_and,
    ternary_not,
    ternary_or,
    ternary_xor,
)
from repro.algebra.schema import AttrKind, Attribute, Schema
from repro.cypher import parse_expression
from repro.errors import CompilerError, EvaluationError
from repro.graph.values import ListValue, MapValue, PathValue

SCHEMA = Schema(
    [
        Attribute("x", AttrKind.VALUE),
        Attribute("y", AttrKind.VALUE),
        Attribute("s", AttrKind.VALUE),
        Attribute("xs", AttrKind.VALUE),
        Attribute("m", AttrKind.VALUE),
        Attribute("t", AttrKind.PATH),
    ]
)


def run(text, x=None, y=None, s=None, xs=None, m=None, t=None, params=None):
    expr = parse_expression(text)
    fn = compile_expr(expr, SCHEMA)
    return fn((x, y, s, xs, m, t), EvalContext(params or {}))


LIST = ListValue((1, 2, 3))
PATH = PathValue((1, 2, 3), (10, 11))


class TestTernaryLogic:
    def test_and_truth_table(self):
        assert ternary_and([True, True]) is True
        assert ternary_and([True, False]) is False
        assert ternary_and([False, None]) is False  # false dominates unknown
        assert ternary_and([True, None]) is None

    def test_or_truth_table(self):
        assert ternary_or([False, False]) is False
        assert ternary_or([False, True]) is True
        assert ternary_or([True, None]) is True  # true dominates unknown
        assert ternary_or([False, None]) is None

    def test_xor(self):
        assert ternary_xor([True, False]) is True
        assert ternary_xor([True, True]) is False
        assert ternary_xor([True, None]) is None

    def test_not(self):
        assert ternary_not(True) is False
        assert ternary_not(None) is None

    def test_end_to_end(self):
        assert run("x = 1 AND y = 2", x=1, y=2) is True
        assert run("x = 1 AND y = 2", x=1, y=None) is None
        assert run("x = 1 OR y = 2", x=1, y=None) is True
        assert run("NOT (x = 1)", x=None) is None

    def test_non_boolean_operand_raises(self):
        with pytest.raises(EvaluationError):
            run("x AND TRUE", x=5)


class TestComparisons:
    def test_equality(self):
        assert run("x = y", x=1, y=1.0) is True
        assert run("x <> y", x=1, y=2) is True
        assert run("x = y", x=None, y=1) is None

    def test_ordering(self):
        assert run("x < y", x=1, y=2) is True
        assert run("x >= y", x=2, y=2) is True

    def test_incomparable_is_unknown(self):
        assert run("x < y", x=1, y="a") is None

    def test_chained(self):
        assert run("1 < x < 10", x=5) is True
        assert run("1 < x < 10", x=10) is False
        assert run("1 < x < 10", x=None) is None


class TestArithmetic:
    def test_numbers(self):
        assert run("x + y", x=2, y=3) == 5
        assert run("x - y", x=2, y=3) == -1
        assert run("x * y", x=2, y=3) == 6

    def test_integer_division_truncates_toward_zero(self):
        assert run("x / y", x=3, y=2) == 1
        assert run("x / y", x=-3, y=2) == -1

    def test_float_division(self):
        assert run("x / y", x=3.0, y=2) == 1.5

    def test_division_by_zero_raises(self):
        with pytest.raises(EvaluationError):
            run("x / y", x=1, y=0)

    def test_modulo_java_semantics(self):
        assert run("x % y", x=7, y=3) == 1
        assert run("x % y", x=-7, y=3) == -1

    def test_power_is_float(self):
        assert run("x ^ y", x=2, y=3) == 8.0

    def test_null_propagation(self):
        assert run("x + y", x=None, y=1) is None

    def test_string_concat(self):
        assert run("s + 'b'", s="a") == "ab"
        assert run("s + x", s="n=", x=1) == "n=1"

    def test_list_concat_and_append(self):
        assert run("xs + [4]", xs=LIST) == ListValue((1, 2, 3, 4))
        assert run("xs + 4", xs=LIST) == ListValue((1, 2, 3, 4))
        assert run("0 + xs", xs=LIST) == ListValue((0, 1, 2, 3))

    def test_type_error_raises(self):
        with pytest.raises(EvaluationError):
            run("x - s", x=1, s="a")

    def test_unary_minus(self):
        assert run("-x", x=5) == -5
        assert run("-x", x=None) is None

    @given(st.integers(-100, 100), st.integers(-100, 100).filter(lambda v: v != 0))
    def test_div_mod_identity(self, a, b):
        q = arith_binary("/", a, b)
        r = arith_binary("%", a, b)
        assert q * b + r == a


class TestStringAndListOperators:
    def test_starts_ends_contains(self):
        assert run("s STARTS WITH 'ab'", s="abc") is True
        assert run("s ENDS WITH 'bc'", s="abc") is True
        assert run("s CONTAINS 'b'", s="abc") is True
        assert run("s CONTAINS 'z'", s="abc") is False

    def test_string_predicate_on_null_or_nonstring(self):
        assert run("s STARTS WITH 'a'", s=None) is None
        assert run("s STARTS WITH 'a'", s=1) is None

    def test_in(self):
        assert run("x IN xs", x=2, xs=LIST) is True
        assert run("x IN xs", x=9, xs=LIST) is False
        assert run("x IN xs", x=None, xs=LIST) is None
        assert run("x IN xs", x=1, xs=None) is None

    def test_in_empty_list_is_false_even_for_null(self):
        assert cypher_in(None, ListValue(())) is False

    def test_in_with_unknown_element(self):
        assert cypher_in(1, ListValue((None, 2))) is None
        assert cypher_in(2, ListValue((None, 2))) is True

    def test_is_null(self):
        assert run("x IS NULL", x=None) is True
        assert run("x IS NOT NULL", x=None) is False

    def test_subscript(self):
        assert run("xs[0]", xs=LIST) == 1
        assert run("xs[-1]", xs=LIST) == 3
        assert run("xs[9]", xs=LIST) is None  # out of bounds → null
        assert run("m['k']", m=MapValue({"k": 7})) == 7
        assert run("m['missing']", m=MapValue({"k": 7})) is None

    def test_slice(self):
        assert run("xs[1..3]", xs=LIST) == ListValue((2, 3))
        assert run("xs[..2]", xs=LIST) == ListValue((1, 2))
        assert run("xs[1..]", xs=LIST) == ListValue((2, 3))

    def test_subscript_type_errors(self):
        with pytest.raises(EvaluationError):
            run("x[0]", x=5)
        with pytest.raises(EvaluationError):
            run("xs[s]", xs=LIST, s="k")


class TestFunctions:
    def test_coalesce(self):
        assert run("coalesce(x, y, 3)", x=None, y=None) == 3
        assert run("coalesce(x, 2)", x=1) == 1

    def test_conversions(self):
        assert run("toInteger(s)", s="42") == 42
        assert run("toInteger(s)", s="nope") is None
        assert run("toInteger(x)", x=3.7) == 3
        assert run("toFloat(s)", s="2.5") == 2.5
        assert run("toString(x)", x=True) == "true"
        assert run("toBoolean(s)", s="TRUE") is True

    def test_size_and_length(self):
        assert run("size(xs)", xs=LIST) == 3
        assert run("size(s)", s="abc") == 3
        assert run("size(x)", x=None) is None
        assert run("length(t)", t=PATH) == 2

    def test_path_functions(self):
        assert run("nodes(t)", t=PATH) == ListValue((1, 2, 3))
        assert run("relationships(t)", t=PATH) == ListValue((10, 11))
        with pytest.raises(EvaluationError):
            run("nodes(xs)", xs=LIST)

    def test_list_functions(self):
        assert run("head(xs)", xs=LIST) == 1
        assert run("last(xs)", xs=LIST) == 3
        assert run("head(xs)", xs=ListValue(())) is None
        assert run("tail(xs)", xs=LIST) == ListValue((2, 3))
        assert run("reverse(xs)", xs=LIST) == ListValue((3, 2, 1))
        assert run("reverse(s)", s="ab") == "ba"

    def test_range(self):
        assert run("range(1, 3)") == ListValue((1, 2, 3))
        assert run("range(3, 1, -1)") == ListValue((3, 2, 1))
        assert run("range(1, 10, 3)") == ListValue((1, 4, 7, 10))
        with pytest.raises(EvaluationError):
            run("range(1, 3, 0)")

    def test_numeric_functions(self):
        assert run("abs(x)", x=-2) == 2
        assert run("sign(x)", x=-5) == -1
        assert run("floor(x)", x=1.7) == 1
        assert run("ceil(x)", x=1.2) == 2
        assert run("sqrt(x)", x=9) == 3.0
        assert run("sqrt(x)", x=-1) is None  # NaN guarded to null
        assert run("round(x)", x=1.5) == 2.0

    def test_string_functions(self):
        assert run("toUpper(s)", s="ab") == "AB"
        assert run("toLower(s)", s="AB") == "ab"
        assert run("trim(s)", s="  a ") == "a"
        assert run("replace(s, 'a', 'o')", s="banana") == "bonono"
        assert run("substring(s, 1, 2)", s="hello") == "el"
        assert run("split(s, ',')", s="a,b") == ListValue(("a", "b"))
        assert run("left(s, 2)", s="hello") == "he"
        assert run("right(s, 2)", s="hello") == "lo"

    def test_exists(self):
        assert run("exists(x)", x=1) is True
        assert run("exists(x)", x=None) is False

    def test_keys_on_map(self):
        assert run("keys(m)", m=MapValue({"b": 1, "a": 2})) == ListValue(("a", "b"))

    def test_case(self):
        text = "CASE WHEN x > 10 THEN 'big' WHEN x > 1 THEN 'mid' ELSE 'small' END"
        assert run(text, x=50) == "big"
        assert run(text, x=5) == "mid"
        assert run(text, x=0) == "small"
        assert run(text, x=None) == "small"  # unknown WHEN falls through

    def test_case_without_else_yields_null(self):
        assert run("CASE WHEN x > 1 THEN 'big' END", x=0) is None

    def test_unknown_function_rejected_at_compile_time(self):
        with pytest.raises(CompilerError):
            compile_expr(parse_expression("frobnicate(x)"), SCHEMA)

    def test_wrong_arity_rejected_at_compile_time(self):
        with pytest.raises(CompilerError):
            compile_expr(parse_expression("size(x, y)"), SCHEMA)

    def test_unknown_variable_rejected_at_compile_time(self):
        with pytest.raises(CompilerError):
            compile_expr(parse_expression("zzz"), SCHEMA)

    def test_aggregate_in_scalar_position_rejected(self):
        with pytest.raises(CompilerError):
            compile_expr(parse_expression("count(x)"), SCHEMA)


class TestParametersAndLiterals:
    def test_parameter_lookup(self):
        assert run("$p + 1", params={"p": 2}) == 3

    def test_parameter_frozen(self):
        assert run("$p", params={"p": [1, 2]}) == ListValue((1, 2))

    def test_missing_parameter_raises(self):
        with pytest.raises(EvaluationError):
            run("$missing")

    def test_list_and_map_literals(self):
        assert run("[x, 2]", x=1) == ListValue((1, 2))
        assert run("{a: x}", x=1) == MapValue({"a": 1})

    def test_property_access_on_map_value(self):
        assert run("m.k", m=MapValue({"k": 5})) == 5
        assert run("m.k", m=None) is None

    def test_property_access_on_scalar_raises(self):
        with pytest.raises(EvaluationError):
            run("x.k", x=5)
