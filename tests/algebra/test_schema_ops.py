"""Unit tests for schemas and operator construction/validation."""

import pytest

from repro.algebra import ops
from repro.algebra.fra import check_incremental_fragment, validate_fra
from repro.algebra.gra import validate_gra
from repro.algebra.nra import validate_nra
from repro.algebra.printer import format_compact, format_plan
from repro.algebra.schema import AttrKind, Attribute, Schema
from repro.cypher import ast, parse_expression
from repro.errors import CompilerError, UnsupportedForIncrementalError


class TestSchema:
    def test_lookup(self):
        schema = Schema([Attribute("a", AttrKind.VERTEX), Attribute("b", AttrKind.VALUE)])
        assert schema.index_of("b") == 1
        assert schema.kind_of("a") is AttrKind.VERTEX
        assert "a" in schema and "z" not in schema

    def test_duplicate_rejected(self):
        with pytest.raises(CompilerError):
            Schema([Attribute("a", AttrKind.VALUE), Attribute("a", AttrKind.VALUE)])

    def test_missing_raises(self):
        with pytest.raises(CompilerError):
            Schema(()).index_of("a")

    def test_join_with(self):
        left = Schema([Attribute("a", AttrKind.VERTEX), Attribute("b", AttrKind.VALUE)])
        right = Schema([Attribute("b", AttrKind.VALUE), Attribute("c", AttrKind.EDGE)])
        joined, common = left.join_with(right)
        assert joined.names == ("a", "b", "c")
        assert common == ("b",)

    def test_join_with_kind_mismatch(self):
        left = Schema([Attribute("a", AttrKind.VERTEX)])
        right = Schema([Attribute("a", AttrKind.EDGE)])
        with pytest.raises(CompilerError):
            left.join_with(right)

    def test_project_and_concat(self):
        schema = Schema([Attribute("a", AttrKind.VALUE), Attribute("b", AttrKind.VALUE)])
        assert schema.project(["b"]).names == ("b",)
        combined = schema.concat(Schema([Attribute("c", AttrKind.VALUE)]))
        assert combined.names == ("a", "b", "c")


class TestBaseOperators:
    def test_get_vertices_schema(self):
        op = ops.GetVertices(
            "p",
            ("Post",),
            (ops.PropertyProjection("p", "property", "lang"),),
        )
        assert op.schema.names == ("p", "p.lang")
        assert op.schema.kind_of("p") is AttrKind.VERTEX
        assert op.schema.kind_of("p.lang") is AttrKind.VALUE

    def test_get_vertices_rejects_foreign_projection(self):
        with pytest.raises(CompilerError):
            ops.GetVertices("p", (), (ops.PropertyProjection("q", "labels"),))

    def test_get_edges_schema(self):
        op = ops.GetEdges("a", "e", "b", ("T",))
        assert op.schema.names == ("a", "e", "b")
        assert op.schema.kind_of("e") is AttrKind.EDGE

    def test_get_edges_requires_distinct_vars(self):
        with pytest.raises(CompilerError):
            ops.GetEdges("a", "e", "a")

    def test_projection_output_names(self):
        assert ops.PropertyProjection("p", "property", "lang").output == "p.lang"
        assert ops.PropertyProjection("p", "labels").output == "labels(p)"
        assert ops.PropertyProjection("e", "type").output == "type(e)"
        assert ops.PropertyProjection("p", "properties").output == "properties(p)"

    def test_projection_validation(self):
        with pytest.raises(CompilerError):
            ops.PropertyProjection("p", "labels", key="oops")
        with pytest.raises(CompilerError):
            ops.PropertyProjection("p", "property")

    def test_unit(self):
        assert len(ops.Unit().schema) == 0


def _vertices(var="n", labels=()):
    return ops.GetVertices(var, labels)


class TestComposites:
    def test_join_schema_and_common(self):
        left = ops.GetEdges("a", "e1", "b")
        right = ops.GetEdges("b", "e2", "c")
        join = ops.Join(left, right)
        assert join.schema.names == ("a", "e1", "b", "e2", "c")
        assert join.common == ("b",)

    def test_antijoin_keeps_left_schema(self):
        anti = ops.AntiJoin(ops.GetEdges("a", "e1", "b"), _vertices("b"))
        assert anti.schema.names == ("a", "e1", "b")

    def test_project_kind_inference(self):
        project = ops.Project(
            _vertices(),
            (
                ("n", ast.Variable("n")),
                ("k", parse_expression("1 + 1")),
            ),
        )
        assert project.schema.kind_of("n") is AttrKind.VERTEX
        assert project.schema.kind_of("k") is AttrKind.VALUE

    def test_unwind_adds_value_attr(self):
        unwound = ops.Unwind(_vertices(), parse_expression("[1,2]"), "x")
        assert unwound.schema.names == ("n", "x")
        with pytest.raises(CompilerError):
            ops.Unwind(_vertices(), parse_expression("[1]"), "n")

    def test_union_requires_matching_columns(self):
        with pytest.raises(CompilerError):
            ops.Union(_vertices("a"), _vertices("b"))

    def test_union_permutation(self):
        left = ops.Project(_vertices(), (("x", ast.Literal(1)), ("y", ast.Literal(2))))
        right = ops.Project(_vertices(), (("y", ast.Literal(3)), ("x", ast.Literal(4))))
        union = ops.Union(left, right)
        assert union.right_permutation == (1, 0)

    def test_transitive_join_schema(self):
        tj = ops.TransitiveJoin(
            _vertices("p", ("Post",)),
            ops.GetEdges("_s", "_e", "_t", ("REPLY",)),
            source="p",
            target="c",
            path_alias="t",
        )
        assert tj.schema.names == ("p", "c", "t")
        assert tj.schema.kind_of("t") is AttrKind.PATH

    def test_transitive_join_rejects_labelled_edges(self):
        with pytest.raises(CompilerError):
            ops.TransitiveJoin(
                _vertices("p"),
                ops.GetEdges("_s", "_e", "_t", ("T",), tgt_labels=("X",)),
                source="p",
                target="c",
            )

    def test_transitive_join_rejects_bound_target(self):
        with pytest.raises(CompilerError):
            ops.TransitiveJoin(
                _vertices("p"),
                ops.GetEdges("_s", "_e", "_t"),
                source="p",
                target="p",
            )

    def test_expand_out_schema(self):
        expand = ops.ExpandOut(_vertices("a"), "a", "e", "b")
        assert expand.schema.names == ("a", "e", "b")
        var_len = ops.ExpandOut(
            _vertices("a"), "a", "e", "b", min_hops=1, max_hops=None, path_alias="p"
        )
        assert var_len.schema.names == ("a", "b", "p")

    def test_operators_are_immutable(self):
        op = _vertices()
        with pytest.raises(AttributeError):
            op.var = "other"  # type: ignore[misc]


class TestStageValidators:
    def test_gra_rejects_get_edges(self):
        with pytest.raises(CompilerError):
            validate_gra(ops.GetEdges("a", "e", "b"))

    def test_gra_rejects_projections(self):
        with pytest.raises(CompilerError):
            validate_gra(
                ops.GetVertices("p", (), (ops.PropertyProjection("p", "labels"),))
            )

    def test_nra_rejects_expand(self):
        with pytest.raises(CompilerError):
            validate_nra(ops.ExpandOut(_vertices("a"), "a", "e", "b"))

    def test_nra_rejects_pushdown(self):
        with pytest.raises(CompilerError):
            validate_nra(
                ops.GetVertices("p", (), (ops.PropertyProjection("p", "labels"),))
            )

    def test_fra_rejects_unnest(self):
        unnest = ops.PropertyUnnest(
            _vertices("p"), ops.PropertyProjection("p", "property", "lang")
        )
        with pytest.raises(CompilerError):
            validate_fra(unnest)

    def test_fra_rejects_entity_property_access(self):
        select = ops.Select(_vertices("p"), parse_expression("p.lang = 'en'"))
        with pytest.raises(CompilerError):
            validate_fra(select)

    def test_fragment_check_rejects_ordering(self):
        sorted_plan = ops.Sort(_vertices(), ((ast.Variable("n"), True),))
        with pytest.raises(UnsupportedForIncrementalError):
            check_incremental_fragment(sorted_plan)
        with pytest.raises(UnsupportedForIncrementalError):
            check_incremental_fragment(ops.Limit(_vertices(), ast.Literal(1)))

    def test_fragment_check_accepts_bag_plan(self):
        check_incremental_fragment(ops.Dedup(_vertices()))


class TestPrinter:
    def test_format_plan_is_indented_tree(self):
        plan = ops.Select(_vertices("p", ("Post",)), parse_expression("1 = 1"))
        text = format_plan(plan)
        assert "σ" in text and "©(p:Post)" in text
        assert text.splitlines()[1].startswith("  ")

    def test_format_compact_binary(self):
        join = ops.Join(_vertices("a"), _vertices("b"))
        assert "⋈" in format_compact(join)

    def test_pushdown_annotation_rendered(self):
        op = ops.GetVertices(
            "p", ("Post",), (ops.PropertyProjection("p", "property", "lang"),)
        )
        assert "{lang}" in format_plan(op)
