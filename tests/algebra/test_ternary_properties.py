"""Algebraic property tests for Cypher's three-valued logic and the global
value order (hypothesis).

These are the laws the Rete selection nodes and the canonical result
ordering silently rely on; pinning them algebraically guards refactors of
the expression layer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import (
    ternary_and,
    ternary_not,
    ternary_or,
    ternary_xor,
)
from repro.graph.values import (
    ListValue,
    MapValue,
    cypher_compare,
    cypher_eq,
    freeze_value,
    order_key,
)

truth = st.sampled_from([True, False, None])
truth_lists = st.lists(truth, min_size=2, max_size=4)

scalars = st.one_of(
    st.integers(-50, 50),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet="abcxyz", max_size=5),
    st.booleans(),
    st.none(),
)
values = st.one_of(
    scalars,
    st.lists(scalars, max_size=3),
    st.dictionaries(st.sampled_from(["k1", "k2"]), scalars, max_size=2),
)


class TestTernaryLogic:
    @given(values=truth_lists)
    @settings(max_examples=100)
    def test_and_or_duality(self, values):
        # De Morgan under 3VL: ¬(a ∧ b ∧ …) = (¬a ∨ ¬b ∨ …)
        negated = [ternary_not(v) for v in values]
        assert ternary_not(ternary_and(values)) == ternary_or(negated)

    @given(values=truth_lists)
    @settings(max_examples=100)
    def test_commutativity(self, values):
        assert ternary_and(values) == ternary_and(list(reversed(values)))
        assert ternary_or(values) == ternary_or(list(reversed(values)))
        assert ternary_xor(values) == ternary_xor(list(reversed(values)))

    @given(a=truth)
    def test_identity_elements(self, a):
        assert ternary_and([a, True]) == a
        assert ternary_or([a, False]) == a

    @given(a=truth)
    def test_dominant_elements(self, a):
        assert ternary_and([a, False]) is False
        assert ternary_or([a, True]) is True

    @given(a=truth)
    def test_double_negation(self, a):
        assert ternary_not(ternary_not(a)) == a

    def test_null_propagation(self):
        assert ternary_and([True, None]) is None
        assert ternary_or([False, None]) is None
        assert ternary_xor([True, None]) is None
        assert ternary_not(None) is None


class TestValueEquality:
    @given(a=values, b=values)
    @settings(max_examples=150)
    def test_eq_symmetry(self, a, b):
        fa, fb = freeze_value(a), freeze_value(b)
        assert cypher_eq(fa, fb) == cypher_eq(fb, fa)

    @given(a=values)
    @settings(max_examples=100)
    def test_eq_reflexive_or_null(self, a):
        frozen = freeze_value(a)
        result = cypher_eq(frozen, frozen)
        # null (or any value containing null) compares to null, else True
        assert result in (True, None)

    @given(a=values)
    def test_null_comparison_is_null(self, a):
        assert cypher_eq(freeze_value(a), None) is None
        assert cypher_eq(None, freeze_value(a)) is None


class TestGlobalOrder:
    @given(items=st.lists(values, max_size=8))
    @settings(max_examples=150)
    def test_sorting_is_idempotent(self, items):
        frozen = [freeze_value(v) for v in items]
        once = sorted(frozen, key=order_key)
        assert sorted(once, key=order_key) == once

    @given(a=values, b=values)
    @settings(max_examples=150)
    def test_order_keys_totally_ordered(self, a, b):
        ka, kb = order_key(freeze_value(a)), order_key(freeze_value(b))
        assert (ka < kb) or (kb < ka) or (ka == kb)

    @given(a=values, b=values)
    @settings(max_examples=100)
    def test_compare_antisymmetric_when_comparable(self, a, b):
        fa, fb = freeze_value(a), freeze_value(b)
        ab = cypher_compare(fa, fb)
        ba = cypher_compare(fb, fa)
        if ab is None or ba is None:
            return  # incomparable under Cypher comparison rules
        assert ab == -ba

    def test_nested_values_hashable_and_orderable(self):
        nested = freeze_value({"a": [1, {"b": None}], "c": "x"})
        assert isinstance(nested, MapValue)
        hash(nested)
        order_key(nested)
        inner = nested.get("a")
        assert isinstance(inner, ListValue)
