"""Cost-based join ordering: statistics, estimates, equivalence, benefit."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PropertyGraph, QueryEngine, compile_query
from repro.algebra import ops
from repro.compiler.costopt import estimated_cost, reorder_joins
from repro.compiler.stats import GraphStatistics, estimate_cardinality
from repro.eval import Interpreter
from repro.rete.network import ReteNetwork
from repro.workloads.random_graphs import random_graph


def skewed_graph(rare=3, common=60, seed=5):
    """A graph where label cardinalities differ by an order of magnitude."""
    graph = PropertyGraph()
    rares = [
        graph.add_vertex(labels=["Rare"], properties={"lang": "en"})
        for _ in range(rare)
    ]
    commons = [
        graph.add_vertex(labels=["Common"], properties={"lang": "en" if i % 2 else "de"})
        for i in range(common)
    ]
    import random

    rng = random.Random(seed)
    for c in commons:
        graph.add_edge(rng.choice(rares), c, "R")
        graph.add_edge(c, rng.choice(commons), "S")
    return graph


class TestStatistics:
    def test_counts(self):
        graph = skewed_graph()
        stats = GraphStatistics.from_graph(graph)
        assert stats.vertex_count == 63
        assert stats.label_counts == {"Rare": 3, "Common": 60}
        assert stats.type_counts == {"R": 60, "S": 60}

    def test_get_vertices_estimate(self):
        stats = GraphStatistics.from_graph(skewed_graph())
        assert estimate_cardinality(ops.GetVertices("v", ("Rare",)), stats) == 3
        assert estimate_cardinality(ops.GetVertices("v", ()), stats) == 63

    def test_get_edges_estimate(self):
        stats = GraphStatistics.from_graph(skewed_graph())
        edges = ops.GetEdges("a", "e", "b", ("R",))
        assert estimate_cardinality(edges, stats) == 60
        undirected = ops.GetEdges("a", "e", "b", ("R",), directed=False)
        assert estimate_cardinality(undirected, stats) == 120

    def test_endpoint_labels_scale_edges(self):
        stats = GraphStatistics.from_graph(skewed_graph())
        constrained = ops.GetEdges("a", "e", "b", ("R",), src_labels=("Rare",))
        assert estimate_cardinality(constrained, stats) < 60

    def test_join_estimate_shrinks_on_shared_vertex(self):
        stats = GraphStatistics.from_graph(skewed_graph())
        left = ops.GetEdges("a", "e1", "b", ("R",))
        right = ops.GetEdges("b", "e2", "c", ("S",))
        join = ops.Join(left, right)
        product = 60 * 60
        assert estimate_cardinality(join, stats) < product

    def test_empty_graph_estimates_are_safe(self):
        stats = GraphStatistics.from_graph(PropertyGraph())
        assert estimate_cardinality(ops.GetVertices("v", ("X",)), stats) >= 0


QUERY_POOL = [
    "MATCH (b:Common)-[:S]->(c:Common), (a:Rare)-[:R]->(b) RETURN a, b, c",
    "MATCH (b:Common)<-[:R]-(a:Rare) WHERE b.lang = 'en' RETURN a, b",
    "MATCH (a:Rare)-[:R]->(b:Common)-[:S]->(c:Common) "
    "WHERE a.lang = c.lang RETURN a, c",
    "MATCH (x:Common), (y:Rare) RETURN x, y",  # forced cross product
]


class TestReorderEquivalence:
    @pytest.mark.parametrize("query", QUERY_POOL)
    def test_one_shot_results_identical(self, query):
        graph = skewed_graph()
        stats = GraphStatistics.from_graph(graph)
        baseline = Interpreter(graph).run(compile_query(query).plan)
        reordered = Interpreter(graph).run(compile_query(query, stats).plan)
        assert sorted(baseline.rows(), key=repr) == sorted(
            reordered.rows(), key=repr
        )

    @pytest.mark.parametrize("query", QUERY_POOL)
    def test_incremental_views_identical_after_updates(self, query):
        graph = skewed_graph()
        stats = GraphStatistics.from_graph(graph)
        plain = ReteNetwork(graph, compile_query(query).plan)
        plain.populate()
        costed = ReteNetwork(graph, compile_query(query, stats).plan)
        costed.populate()
        graph.subscribe(plain.dispatch)
        graph.subscribe(costed.dispatch)
        vertex = graph.add_vertex(labels=["Rare"], properties={"lang": "de"})
        common = next(iter(graph.vertices("Common")))
        graph.add_edge(vertex, common, "R")
        graph.set_vertex_property(common, "lang", "en")
        graph.remove_edge(next(iter(graph.edges("S"))))
        assert plain.production.multiset() == costed.production.multiset()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_equivalence_on_random_graphs(self, seed):
        bundle = random_graph(vertices=25, edges=40, seed=seed)
        graph = bundle.graph
        stats = GraphStatistics.from_graph(graph)
        query = (
            "MATCH (a)-[:T0]->(b)-[:T1]->(c) RETURN a, c"
            if "T1" in graph.edge_types()
            else "MATCH (a)-[:T0]->(b) RETURN a, b"
        )
        baseline = Interpreter(graph).run(compile_query(query).plan)
        reordered = Interpreter(graph).run(compile_query(query, stats).plan)
        assert sorted(baseline.rows(), key=repr) == sorted(
            reordered.rows(), key=repr
        )


class TestReorderBenefit:
    def test_cost_not_worse_on_skew(self):
        graph = skewed_graph()
        stats = GraphStatistics.from_graph(graph)
        query = QUERY_POOL[0]  # written big-relations-first
        plain = compile_query(query).plan
        costed = compile_query(query, stats).plan
        assert estimated_cost(costed, stats) <= estimated_cost(plain, stats)

    def test_memory_reduction_on_pessimal_order(self):
        # written so the syntactic order starts with an 80×80 cross product;
        # the cost-based order defers the cross product to the top
        graph = skewed_graph(rare=2, common=80)
        stats = GraphStatistics.from_graph(graph)
        query = "MATCH (x:Common), (y:Common), (r:Rare)-[:R]->(x) RETURN x, y, r"
        plain = ReteNetwork(graph, compile_query(query).plan)
        plain.populate()
        costed = ReteNetwork(graph, compile_query(query, stats).plan)
        costed.populate()
        assert costed.memory_cells() < plain.memory_cells()

    def test_reorder_handles_plans_without_joins(self):
        graph = skewed_graph()
        stats = GraphStatistics.from_graph(graph)
        plan = compile_query("MATCH (a:Rare) RETURN a", stats).plan
        assert plan is not None  # no joins: pass must be a no-op structurally


class TestEngineIntegration:
    def test_query_engine_accepts_statistics(self):
        graph = skewed_graph()
        engine = QueryEngine(graph)
        stats = GraphStatistics.from_graph(graph)
        compiled = compile_query(QUERY_POOL[0], stats)
        view = engine.register(compiled)
        assert sorted(view.rows(), key=repr) == sorted(
            engine.evaluate(QUERY_POOL[0], use_views=False).rows(), key=repr
        )
