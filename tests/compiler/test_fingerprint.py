"""Canonical subplan fingerprints: alpha-equivalence, params, fallbacks."""

from repro.algebra import ops
from repro.compiler.fingerprint import fingerprint
from repro.compiler.pipeline import compile_query
from repro.cypher import ast


def fp(query: str):
    return fingerprint(compile_query(query).plan)


class TestAlphaEquivalence:
    def test_renamed_variables_share_a_fingerprint(self):
        a = fp("MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c")
        b = fp("MATCH (x:Post)-[:REPLY]->(y:Comm) RETURN x, y")
        assert a is not None
        assert a == b

    def test_renamed_output_columns_share_a_fingerprint(self):
        a = fp("MATCH (p:Post) RETURN p.lang AS lang")
        b = fp("MATCH (q:Post) RETURN q.lang AS language")
        assert a == b

    def test_renamed_predicates_share_a_fingerprint(self):
        a = fp("MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p")
        b = fp("MATCH (s:Post)-[:REPLY]->(t:Comm) WHERE s.lang = t.lang RETURN s")
        assert a == b

    def test_label_set_order_is_canonical(self):
        a = fingerprint(ops.GetVertices("v", labels=("A", "B")))
        b = fingerprint(ops.GetVertices("w", labels=("B", "A")))
        assert a == b


class TestDiscrimination:
    def test_different_labels_differ(self):
        assert fp("MATCH (p:Post) RETURN p") != fp("MATCH (p:Comm) RETURN p")

    def test_different_predicates_differ(self):
        assert fp("MATCH (p:Post) WHERE p.score > 1 RETURN p") != fp(
            "MATCH (p:Post) WHERE p.score > 2 RETURN p"
        )

    def test_literal_types_are_not_conflated(self):
        # 1 == True in Python; the fingerprint must still tell them apart
        assert fp("MATCH (p:Post) WHERE p.flag = 1 RETURN p") != fp(
            "MATCH (p:Post) WHERE p.flag = true RETURN p"
        )

    def test_projection_order_matters(self):
        assert fp("MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c") != fp(
            "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN c, p"
        )


class TestParameters:
    def test_parameters_stay_symbolic(self):
        a = fp("MATCH (p:Post) WHERE p.score > $min RETURN p")
        b = fp("MATCH (q:Post) WHERE q.score > $min RETURN q")
        assert a == b
        assert a.parameters == frozenset({"min"})

    def test_distinct_parameter_names_differ(self):
        assert fp("MATCH (p:Post) WHERE p.score > $lo RETURN p") != fp(
            "MATCH (p:Post) WHERE p.score > $hi RETURN p"
        )


class TestFallbacks:
    def test_unknown_operator_is_unshareable(self):
        base = ops.GetVertices("v", labels=("A",))
        sort = ops.Sort(base, ((ast.Variable("v"), True),))
        assert fingerprint(sort) is None

    def test_ancestors_of_unshareable_subtrees_are_unshareable(self):
        base = ops.GetVertices("v", labels=("A",))
        sort = ops.Sort(base, ((ast.Variable("v"), True),))
        assert fingerprint(ops.Dedup(sort)) is None

    def test_whole_fragment_is_shareable(self):
        queries = (
            "MATCH (p:Post) RETURN p",
            "MATCH (p:Post)-[r:REPLY]->(c:Comm) RETURN p, r, c",
            "MATCH (p:Post) RETURN DISTINCT p.lang AS lang",
            "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
            "MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(c:Comm) RETURN p, c",
            "MATCH (p:Post)-[:REPLY*]->(c:Comm) RETURN p, c",
            "UNWIND [1, 2, 3] AS x RETURN x",
            "MATCH (p:Post) RETURN p.lang AS v UNION MATCH (c:Comm) "
            "RETURN c.lang AS v",
        )
        for query in queries:
            assert fingerprint(compile_query(query).plan) is not None, query

    def test_antijoin_is_shareable(self):
        anti = ops.AntiJoin(
            ops.GetEdges("a", "e", "b"), ops.GetVertices("b", labels=("Gone",))
        )
        assert fingerprint(anti) is not None
