"""Canonical subplan fingerprints: alpha-equivalence, params, fallbacks."""

from repro.algebra import ops
from repro.compiler.fingerprint import fingerprint
from repro.compiler.pipeline import compile_query
from repro.cypher import ast


def fp(query: str):
    return fingerprint(compile_query(query).plan)


class TestAlphaEquivalence:
    def test_renamed_variables_share_a_fingerprint(self):
        a = fp("MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c")
        b = fp("MATCH (x:Post)-[:REPLY]->(y:Comm) RETURN x, y")
        assert a is not None
        assert a == b

    def test_renamed_output_columns_share_a_fingerprint(self):
        a = fp("MATCH (p:Post) RETURN p.lang AS lang")
        b = fp("MATCH (q:Post) RETURN q.lang AS language")
        assert a == b

    def test_renamed_predicates_share_a_fingerprint(self):
        a = fp("MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p")
        b = fp("MATCH (s:Post)-[:REPLY]->(t:Comm) WHERE s.lang = t.lang RETURN s")
        assert a == b

    def test_label_set_order_is_canonical(self):
        a = fingerprint(ops.GetVertices("v", labels=("A", "B")))
        b = fingerprint(ops.GetVertices("w", labels=("B", "A")))
        assert a == b


class TestDiscrimination:
    def test_different_labels_differ(self):
        assert fp("MATCH (p:Post) RETURN p") != fp("MATCH (p:Comm) RETURN p")

    def test_different_predicates_differ(self):
        assert fp("MATCH (p:Post) WHERE p.score > 1 RETURN p") != fp(
            "MATCH (p:Post) WHERE p.score > 2 RETURN p"
        )

    def test_literal_types_are_not_conflated(self):
        # 1 == True in Python; the fingerprint must still tell them apart
        assert fp("MATCH (p:Post) WHERE p.flag = 1 RETURN p") != fp(
            "MATCH (p:Post) WHERE p.flag = true RETURN p"
        )

    def test_projection_order_matters(self):
        assert fp("MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c") != fp(
            "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN c, p"
        )


class TestParameters:
    def test_parameters_stay_symbolic(self):
        a = fp("MATCH (p:Post) WHERE p.score > $min RETURN p")
        b = fp("MATCH (q:Post) WHERE q.score > $min RETURN q")
        assert a == b
        assert a.parameters == frozenset({"min"})

    def test_distinct_parameter_names_differ(self):
        assert fp("MATCH (p:Post) WHERE p.score > $lo RETURN p") != fp(
            "MATCH (p:Post) WHERE p.score > $hi RETURN p"
        )


class TestFallbacks:
    def test_unknown_operator_is_unshareable(self):
        base = ops.GetVertices("v", labels=("A",))
        sort = ops.Sort(base, ((ast.Variable("v"), True),))
        assert fingerprint(sort) is None

    def test_ancestors_of_unshareable_subtrees_are_unshareable(self):
        base = ops.GetVertices("v", labels=("A",))
        sort = ops.Sort(base, ((ast.Variable("v"), True),))
        assert fingerprint(ops.Dedup(sort)) is None

    def test_whole_fragment_is_shareable(self):
        queries = (
            "MATCH (p:Post) RETURN p",
            "MATCH (p:Post)-[r:REPLY]->(c:Comm) RETURN p, r, c",
            "MATCH (p:Post) RETURN DISTINCT p.lang AS lang",
            "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
            "MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(c:Comm) RETURN p, c",
            "MATCH (p:Post)-[:REPLY*]->(c:Comm) RETURN p, c",
            "UNWIND [1, 2, 3] AS x RETURN x",
            "MATCH (p:Post) RETURN p.lang AS v UNION MATCH (c:Comm) "
            "RETURN c.lang AS v",
        )
        for query in queries:
            assert fingerprint(compile_query(query).plan) is not None, query

    def test_antijoin_is_shareable(self):
        anti = ops.AntiJoin(
            ops.GetEdges("a", "e", "b"), ops.GetVertices("b", labels=("Gone",))
        )
        assert fingerprint(anti) is not None


class TestGeneralizedFingerprint:
    def gfp(self, query: str):
        from repro.compiler.fingerprint import generalized_fingerprint

        return generalized_fingerprint(compile_query(query).plan)

    def test_parameter_names_generalize_away(self):
        a = self.gfp("MATCH (p:Post) WHERE p.score > $min RETURN p")
        b = self.gfp("MATCH (q:Post) WHERE q.score > $lo RETURN q")
        assert a is not None
        assert a.structure == b.structure
        assert a.param_order == ("min",)
        assert b.param_order == ("lo",)

    def test_param_order_follows_first_occurrence(self):
        g = self.gfp(
            "MATCH (p:Post) WHERE p.score > $lo AND p.score < $hi RETURN p"
        )
        assert g.param_order == ("lo", "hi")

    def test_repeated_parameter_keeps_one_position(self):
        a = self.gfp(
            "MATCH (p:Post) WHERE p.score > $x AND p.rank < $x RETURN p"
        )
        b = self.gfp(
            "MATCH (p:Post) WHERE p.score > $y AND p.rank < $y RETURN p"
        )
        c = self.gfp(
            "MATCH (p:Post) WHERE p.score > $y AND p.rank < $z RETURN p"
        )
        assert a.structure == b.structure
        assert a.param_order == ("x",)
        assert a.structure != c.structure  # one param vs two is structural

    def test_position_swap_is_structural(self):
        a = self.gfp("MATCH (p:Post) WHERE p.lo = $a AND p.hi = $b RETURN p")
        b = self.gfp("MATCH (p:Post) WHERE p.lo = $b AND p.hi = $a RETURN p")
        # both are (param0 on lo, param1 on hi) after generalisation
        assert a.structure == b.structure
        assert a.param_order == ("a", "b")
        assert b.param_order == ("b", "a")

    def test_unshareable_subtrees_have_no_generalized_fingerprint(self):
        from repro.compiler.fingerprint import generalized_fingerprint

        plan = ops.Select(
            ops.GetVertices("p", labels=("Post",)),
            ast.Comparison((ast.Variable("p"), ast.Literal(object())), ("=",)),
        )
        assert generalized_fingerprint(plan) is None


class TestBindingKey:
    """The sharing layer's per-binding equality key (satellite fix: the key
    no longer stores the frozen value redundantly next to its own compact
    form, but must discriminate exactly as before)."""

    def key(self, value):
        from repro.rete.sharing import binding_key

        return binding_key(value)

    def test_python_equal_values_stay_apart(self):
        keys = [self.key(v) for v in (1, True, 1.0, "1", None)]
        assert len(set(keys)) == len(keys)

    def test_equal_values_agree(self):
        assert self.key(1) == self.key(1)
        assert self.key("en") == self.key("en")
        assert self.key([1, "a"]) == self.key([1, "a"])
        assert self.key({"a": 1}) == self.key({"a": 1})
        assert self.key(None) == self.key(None)

    def test_nested_collections_discriminate(self):
        assert self.key([1, 2]) != self.key([1, 2.0])
        assert self.key([1, [2]]) != self.key([1, [2, None]])
        assert self.key({"a": 1}) != self.key({"a": True})
        assert self.key({"a": 1}) != self.key({"b": 1})

    def test_lists_and_tuples_freeze_to_the_same_key(self):
        assert self.key([1, 2]) == self.key((1, 2))

    def test_paths_keep_their_edges(self):
        from repro.graph.values import PathValue

        # same vertex sequence, different edges: repr() conflates these
        # (paths display vertices only), the key must not
        a = PathValue((1, 2), (10,))
        b = PathValue((1, 2), (11,))
        assert repr(a) == repr(b)
        assert self.key(a) != self.key(b)

    def test_keys_are_hashable(self):
        for value in (1, "x", None, [1, [2, {"k": "v"}]], {"m": [True]}):
            hash(self.key(value))
