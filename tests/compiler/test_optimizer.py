"""Tests for the FRA optimiser (selection pushdown, path-alias pruning)."""

from repro.algebra import ops
from repro.compiler import compile_query
from repro.compiler.optimizer import (
    conjoin,
    optimize,
    prune_unused_path_aliases,
    split_conjuncts,
)
from repro.cypher import parse_expression
from repro.eval import Interpreter
from repro.workloads.random_graphs import random_graph


def find(plan, kind):
    return [op for op in plan.walk() if isinstance(op, kind)]


class TestConjuncts:
    def test_split_nested_ands(self):
        expr = parse_expression("a = 1 AND (b = 2 AND c = 3)")
        assert len(split_conjuncts(expr)) == 3

    def test_split_keeps_or_whole(self):
        expr = parse_expression("a = 1 OR b = 2")
        assert split_conjuncts(expr) == [expr]

    def test_conjoin_single(self):
        expr = parse_expression("a = 1")
        assert conjoin([expr]) is expr


class TestSelectionPushdown:
    def test_pushes_single_sided_predicates_below_join(self):
        compiled = compile_query(
            "MATCH (a:Post)-[:REPLY]->(b:Comm) "
            "WHERE a.lang = 'en' AND b.lang = 'de' RETURN a, b"
        )
        # single-sided predicates sit below the join after pushdown
        joins = find(compiled.plan, ops.Join)
        assert joins
        top_join = joins[0]
        left_selects = find(top_join.children[0], ops.Select)
        right_selects = find(top_join.children[1], ops.Select)
        assert left_selects or right_selects

    def test_cross_predicate_stays_above_join(self):
        compiled = compile_query(
            "MATCH (a:Post)-[:REPLY]->(b:Comm) WHERE a.lang = b.lang RETURN a, b"
        )
        joins = find(compiled.plan, ops.Join)
        selects_above = [
            op
            for op in compiled.plan.walk()
            if isinstance(op, ops.Select)
            and any(j in list(op.children[0].walk()) for j in joins)
        ]
        assert selects_above, "cross-side predicate must remain above the join"

    def test_does_not_push_into_optional_right_side(self):
        compiled = compile_query(
            "MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(c:Comm) "
            "WITH p, c WHERE c IS NULL RETURN p"
        )
        # the IS NULL filter must stay above the outer join
        louter = find(compiled.plan, ops.LeftOuterJoin)
        assert louter
        for select in find(louter[0], ops.Select):
            assert "c" not in select.schema or True  # structural smoke only

    def test_optimized_plans_equivalent(self):
        """Optimised and unoptimised FRA agree on random graphs."""
        queries = [
            "MATCH (a:Post)-[:REPLY]->(b:Comm) WHERE a.lang = 'en' AND b.lang = 'de' RETURN a, b",
            "MATCH (a:Post)-[:REPLY]->(b) WHERE a.lang = b.lang AND a.score = 1 RETURN a, b",
            "MATCH (a:Post) OPTIONAL MATCH (a)-[:REPLY]->(b:Comm) RETURN a, b",
            "MATCH (a:Post)-[:REPLY*..3]->(b) WHERE a.lang = 'en' RETURN a, b",
        ]
        for seed in (0, 1):
            graph = random_graph(vertices=12, edges=18, seed=seed).graph
            interp = Interpreter(graph)
            for query in queries:
                compiled = compile_query(query)
                assert interp.evaluate(compiled.fra) == interp.evaluate(
                    compiled.plan
                ), query

    def test_idempotent(self):
        compiled = compile_query(
            "MATCH (a:Post)-[:REPLY]->(b:Comm) WHERE a.lang = 'en' RETURN a"
        )
        once = optimize(compiled.fra)
        twice = optimize(once)
        from repro.algebra.printer import format_plan

        assert format_plan(once) == format_plan(twice)


class TestPathAliasPruning:
    def test_unreferenced_alias_pruned(self):
        compiled = compile_query("MATCH (a:Post)-[:REPLY*]->(b:Comm) RETURN a, b")
        (tj,) = find(compiled.plan, ops.TransitiveJoin)
        assert tj.path_alias is None

    def test_named_path_keeps_alias(self):
        compiled = compile_query("MATCH t = (a:Post)-[:REPLY*]->(b) RETURN t")
        (tj,) = find(compiled.plan, ops.TransitiveJoin)
        assert tj.path_alias is not None

    def test_rel_list_variable_keeps_alias(self):
        compiled = compile_query("MATCH (a:Post)-[es:REPLY*]->(b) RETURN es")
        (tj,) = find(compiled.plan, ops.TransitiveJoin)
        assert tj.path_alias is not None

    def test_uniqueness_keeps_alias_with_second_edge(self):
        compiled = compile_query(
            "MATCH (a:Post)-[:REPLY*]->(b)-[e:LIKES]->(c) RETURN a, c"
        )
        (tj,) = find(compiled.plan, ops.TransitiveJoin)
        # edge-uniqueness predicate references relationships(path)
        assert tj.path_alias is not None

    def test_prune_is_structural_noop_without_var_length(self):
        compiled = compile_query("MATCH (a:Post)-[:REPLY]->(b) RETURN a, b")
        pruned = prune_unused_path_aliases(compiled.gra)
        from repro.algebra.printer import format_plan

        assert format_plan(pruned) == format_plan(compiled.gra)
