"""Tests for the compilation pipeline — including experiment E2: the
paper's §4 worked example, step by step."""

import pytest

from repro.algebra import ops
from repro.algebra.fra import validate_fra
from repro.algebra.gra import validate_gra
from repro.algebra.nra import collect_unnests, validate_nra
from repro.compiler import compile_query
from repro.errors import (
    CypherSemanticError,
    UnsupportedFeatureError,
)

PAPER_QUERY = (
    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) "
    "WHERE p.lang = c.lang "
    "RETURN p, t"
)


def operators_of(plan, kind):
    return [op for op in plan.walk() if isinstance(op, kind)]


class TestPaperExamplePipeline:
    """E2 — the paper's compilation steps (1)–(3) on the running example."""

    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_query(PAPER_QUERY)

    def test_all_stages_validate(self, compiled):
        validate_gra(compiled.gra)
        validate_nra(compiled.nra)
        validate_fra(compiled.fra)
        validate_fra(compiled.plan)

    def test_step1_gra_uses_get_vertices_and_transitive_expand(self, compiled):
        get_vertices = operators_of(compiled.gra, ops.GetVertices)
        assert any(op.var == "p" and op.labels == ("Post",) for op in get_vertices)
        expands = operators_of(compiled.gra, ops.ExpandOut)
        assert len(expands) == 1
        expand = expands[0]
        assert expand.types == ("REPLY",)
        assert expand.var_length
        assert (expand.min_hops, expand.max_hops) == (1, None)
        assert expand.tgt_labels == ("Comm",)

    def test_step2_nra_replaces_expand_with_transitive_join(self, compiled):
        assert not operators_of(compiled.nra, ops.ExpandOut)
        transitive = operators_of(compiled.nra, ops.TransitiveJoin)
        assert len(transitive) == 1
        assert transitive[0].source == "p"
        assert transitive[0].target == "c"
        edges = transitive[0].edges
        assert edges.types == ("REPLY",)
        # label-free inside ⋈*; the Comm constraint is a companion ©
        assert edges.src_labels == () and edges.tgt_labels == ()
        assert any(
            op.var == "c" and op.labels == ("Comm",)
            for op in operators_of(compiled.nra, ops.GetVertices)
        )

    def test_step2_nra_has_explicit_unnests(self, compiled):
        outputs = {u.projection.output for u in collect_unnests(compiled.nra)}
        assert outputs == {"p.lang", "c.lang"}

    def test_step3_fra_pushes_properties_into_base_operators(self, compiled):
        assert not collect_unnests(compiled.fra)
        annotated = {
            op.var: {p.output for p in op.projections}
            for op in operators_of(compiled.fra, ops.GetVertices)
            if op.projections
        }
        # the paper's ©(p:Post{lang→pL}) and the Comm-side {lang→cL}
        assert annotated == {"p": {"p.lang"}, "c": {"c.lang"}}

    def test_output_columns(self, compiled):
        assert compiled.columns == ("p", "t")

    def test_fragment_membership(self, compiled):
        assert compiled.is_incremental

    def test_explain_mentions_every_stage(self, compiled):
        text = compiled.explain()
        for marker in ("GRA", "NRA", "FRA", "©", "⋈*", "{lang}"):
            assert marker in text


class TestFragmentBoundaries:
    def test_order_by_excluded_from_fragment(self):
        compiled = compile_query("MATCH (n:Post) RETURN n ORDER BY n")
        assert not compiled.is_incremental
        assert "ordering" in (compiled.incremental_reason or "").lower()

    def test_skip_and_limit_excluded(self):
        for clause in ("SKIP 1", "LIMIT 5"):
            compiled = compile_query(f"MATCH (n:Post) RETURN n {clause}")
            assert not compiled.is_incremental

    def test_mid_query_ordering_also_excluded(self):
        compiled = compile_query(
            "MATCH (n:Post) WITH n ORDER BY n LIMIT 3 RETURN n"
        )
        assert not compiled.is_incremental

    def test_bag_queries_are_in_fragment(self):
        for query in [
            "MATCH (n:Post) RETURN DISTINCT n",
            "MATCH (n:Post) RETURN count(*) AS c",
            PAPER_QUERY,
            "MATCH t = (p:Post)-[:REPLY*]->(c) UNWIND nodes(t) AS x RETURN x",
        ]:
            assert compile_query(query).is_incremental, query


class TestGraLowering:
    def test_multiple_parts_become_natural_join(self):
        compiled = compile_query("MATCH (a:X)-[:T]->(b), (b)-[:U]->(c) RETURN a, c")
        joins = operators_of(compiled.gra, ops.Join)
        assert joins  # parts joined on b

    def test_where_becomes_selection(self):
        compiled = compile_query("MATCH (a:X) WHERE a.k = 1 RETURN a")
        assert operators_of(compiled.gra, ops.Select)

    def test_optional_match_becomes_left_outer_join(self):
        compiled = compile_query(
            "MATCH (a:X) OPTIONAL MATCH (a)-[:T]->(b:Y) RETURN a, b"
        )
        assert operators_of(compiled.gra, ops.LeftOuterJoin)

    def test_distinct_becomes_dedup(self):
        compiled = compile_query("MATCH (a:X) RETURN DISTINCT a")
        assert operators_of(compiled.gra, ops.Dedup)

    def test_aggregation_becomes_gamma(self):
        compiled = compile_query("MATCH (a:X) RETURN a.k AS k, count(*) AS n")
        aggregates = operators_of(compiled.gra, ops.Aggregate)
        assert len(aggregates) == 1
        assert [name for name, _ in aggregates[0].keys] == ["k"]

    def test_pattern_properties_become_predicates(self):
        compiled = compile_query("MATCH (a:X {k: 1}) RETURN a")
        selects = operators_of(compiled.gra, ops.Select)
        assert selects

    def test_union_compiles(self):
        compiled = compile_query(
            "MATCH (a:X) RETURN a AS n UNION MATCH (b:Y) RETURN b AS n"
        )
        assert operators_of(compiled.gra, ops.Union)
        assert operators_of(compiled.gra, ops.Dedup)  # UNION deduplicates

    def test_leading_return_uses_unit(self):
        compiled = compile_query("RETURN 1 AS one")
        assert operators_of(compiled.gra, ops.Unit)

    def test_relationship_uniqueness_predicate_injected(self):
        compiled = compile_query("MATCH (a)-[e1:T]->(b)-[e2:T]->(c) RETURN a, c")
        selects = operators_of(compiled.gra, ops.Select)
        assert selects, "edge-uniqueness predicate expected"

    def test_cyclic_pattern_compiles(self):
        compiled = compile_query("MATCH (a:X)-[:T]->(a) RETURN a")
        assert operators_of(compiled.gra, ops.Select)


class TestSemanticErrors:
    def test_unbound_variable(self):
        with pytest.raises(CypherSemanticError):
            compile_query("MATCH (a:X) RETURN b")

    def test_unbound_variable_in_where(self):
        with pytest.raises(CypherSemanticError):
            compile_query("MATCH (a:X) WHERE b.k = 1 RETURN a")

    def test_rebound_relationship_variable(self):
        with pytest.raises(CypherSemanticError):
            compile_query("MATCH (a)-[e:T]->(b), (c)-[e:T]->(d) RETURN a")

    def test_rebound_path_variable(self):
        with pytest.raises(CypherSemanticError):
            compile_query("MATCH p = (a)-[:T]->(p) RETURN p")

    def test_aggregate_in_where_rejected(self):
        with pytest.raises(CypherSemanticError):
            compile_query("MATCH (a:X) WHERE count(*) > 1 RETURN a")

    def test_nested_aggregate_rejected(self):
        with pytest.raises(CypherSemanticError):
            compile_query("MATCH (a:X) RETURN count(sum(a.k)) AS nope")

    def test_non_grouped_variable_in_aggregate_expression(self):
        with pytest.raises(CypherSemanticError):
            compile_query("MATCH (a:X) RETURN count(*) + a.k AS nope")

    def test_duplicate_return_names(self):
        with pytest.raises(CypherSemanticError):
            compile_query("MATCH (a:X) RETURN a.k AS x, a.j AS x")

    def test_unknown_function(self):
        with pytest.raises(CypherSemanticError):
            compile_query("MATCH (a:X) RETURN frobnicate(a) AS x")

    def test_labels_of_non_vertex(self):
        with pytest.raises(CypherSemanticError):
            compile_query("MATCH (a)-[e:T]->(b) RETURN labels(e) AS l")

    def test_type_of_non_edge(self):
        with pytest.raises(CypherSemanticError):
            compile_query("MATCH (a:X) RETURN type(a) AS t")

    def test_property_of_path_rejected(self):
        with pytest.raises(CypherSemanticError):
            compile_query("MATCH p = (a)-[:T]->(b) RETURN p.length AS nope")

    def test_properties_on_var_length_rel_unsupported(self):
        with pytest.raises(UnsupportedFeatureError):
            compile_query("MATCH (a)-[e:T* {w: 1}]->(b) RETURN a")

    def test_skip_requires_constant(self):
        with pytest.raises(CypherSemanticError):
            compile_query("MATCH (a:X) RETURN a SKIP a.k")


class TestRewrites:
    def test_id_function_rewritten_to_variable(self):
        compiled = compile_query("MATCH (a:X) RETURN id(a) AS i")
        assert compiled.columns == ("i",)

    def test_var_length_rel_variable_binds_edge_list(self):
        compiled = compile_query("MATCH (a:X)-[es:T*]->(b) RETURN es")
        assert compiled.columns == ("es",)

    def test_start_end_node_rewritten(self):
        compiled = compile_query("MATCH (a:X)-[e:T]->(b) RETURN startNode(e) AS s, endNode(e) AS t")
        assert compiled.columns == ("s", "t")

    def test_start_node_of_undirected_unsupported(self):
        with pytest.raises(UnsupportedFeatureError):
            compile_query("MATCH (a)-[e:T]-(b) RETURN startNode(e) AS s")

    def test_keys_of_vertex_via_properties(self):
        compiled = compile_query("MATCH (a:X) RETURN keys(a) AS ks")
        assert compiled.is_incremental
