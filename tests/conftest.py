"""Shared fixtures: the paper's running-example graph and engines."""

from __future__ import annotations

import pytest

from repro import PropertyGraph, QueryEngine

#: The paper's §2 running-example query, verbatim.
PAPER_QUERY = (
    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) "
    "WHERE p.lang = c.lang "
    "RETURN p, t"
)


@pytest.fixture
def paper_graph():
    """The §2 example graph: Post 1 —REPLY→ Comm 2 —REPLY→ Comm 3.

    All three messages are English, so both threads [1,2] and [1,2,3]
    satisfy the language filter.
    """
    graph = PropertyGraph()
    post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
    comment2 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    comment3 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    graph.add_edge(post, comment2, "REPLY")
    graph.add_edge(comment2, comment3, "REPLY")
    return graph


@pytest.fixture
def paper_engine(paper_graph):
    return QueryEngine(paper_graph)


@pytest.fixture
def empty_graph():
    return PropertyGraph()


@pytest.fixture
def empty_engine(empty_graph):
    return QueryEngine(empty_graph)


def assert_view_matches_oracle(engine: QueryEngine, view, query: str) -> None:
    """The IVM correctness criterion: view contents == full recomputation."""
    assert view.multiset() == engine.evaluate(query, use_views=False).multiset()
