"""Unit tests for the openCypher lexer."""

import pytest

from repro.cypher import Token, TokenType, tokenize
from repro.errors import CypherSyntaxError


def types(text):
    return [t.type for t in tokenize(text)[:-1]]  # strip EOF


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasics:
    def test_empty_input_is_just_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_keywords_case_insensitive_and_uppercased(self):
        for spelling in ("match", "MATCH", "Match", "mAtCh"):
            token = tokenize(spelling)[0]
            assert token.type is TokenType.KEYWORD
            assert token.text == "MATCH"

    def test_identifier_not_keyword(self):
        token = tokenize("matcher")[0]
        assert token.type is TokenType.IDENT
        assert token.text == "matcher"

    def test_backtick_identifier(self):
        token = tokenize("`weird name`")[0]
        assert token.type is TokenType.IDENT
        assert token.text == "weird name"

    def test_backtick_escape(self):
        token = tokenize("`a``b`")[0]
        assert token.text == "a`b"

    def test_parameter(self):
        token = tokenize("$minAge")[0]
        assert token.type is TokenType.PARAMETER
        assert token.text == "minAge"

    def test_line_and_column_tracking(self):
        tokens = tokenize("MATCH\n  (n)")
        lparen = tokens[1]
        assert (lparen.line, lparen.column) == (2, 3)


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.INTEGER
        assert token.value == 42

    def test_float(self):
        token = tokenize("3.5")[0]
        assert token.type is TokenType.FLOAT
        assert token.value == 3.5

    def test_scientific(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-1")[0].value == 0.25

    def test_range_not_float(self):
        # "1..3" must lex as INTEGER DOTDOT INTEGER (hop ranges)
        assert types("1..3") == [
            TokenType.INTEGER,
            TokenType.DOTDOT,
            TokenType.INTEGER,
        ]

    def test_property_access_after_int_var(self):
        assert types("a.b") == [TokenType.IDENT, TokenType.DOT, TokenType.IDENT]


class TestStrings:
    def test_single_and_double_quotes(self):
        assert tokenize("'hi'")[0].value == "hi"
        assert tokenize('"hi"')[0].value == "hi"

    def test_escapes(self):
        assert tokenize(r"'a\n\t\\\' '")[0].value == "a\n\t\\' "

    def test_unicode_escape(self):
        assert tokenize(r"'A'")[0].value == "A"

    def test_unterminated_raises(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("'oops")

    def test_bad_escape_raises(self):
        with pytest.raises(CypherSyntaxError):
            tokenize(r"'\q'")


class TestOperatorsAndComments:
    def test_arrows_and_comparisons(self):
        assert types("-> <- <> <= >= < >") == [
            TokenType.ARROW_RIGHT,
            TokenType.ARROW_LEFT,
            TokenType.NEQ,
            TokenType.LE,
            TokenType.GE,
            TokenType.LT,
            TokenType.GT,
        ]

    def test_pattern_fragment(self):
        assert texts("-[:REPLY*1..2]->") == [
            "-", "[", ":", "REPLY", "*", "1", "..", "2", "]", "->",
        ]

    def test_line_comment_skipped(self):
        assert types("1 // comment\n2") == [TokenType.INTEGER, TokenType.INTEGER]

    def test_block_comment_skipped(self):
        assert types("1 /* x\ny */ 2") == [TokenType.INTEGER, TokenType.INTEGER]

    def test_unterminated_block_comment(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("/* oops")

    def test_unexpected_character(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("@")

    def test_is_keyword_helper(self):
        token = Token(TokenType.KEYWORD, "MATCH", 1, 1)
        assert token.is_keyword("MATCH")
        assert not token.is_keyword("RETURN")
