"""Unit tests for the openCypher parser: clauses, patterns, expressions."""

import pytest

from repro.cypher import ast, parse, parse_expression
from repro.cypher.parser import UnionQuery
from repro.errors import CypherSyntaxError, UnsupportedFeatureError


def single_match(query):
    parsed = parse(query)
    assert isinstance(parsed, ast.Query)
    clause = parsed.clauses[0]
    assert isinstance(clause, ast.MatchClause)
    return clause


class TestClauses:
    def test_minimal_query(self):
        q = parse("MATCH (n) RETURN n")
        assert isinstance(q, ast.Query)
        assert len(q.clauses) == 1
        assert q.return_clause.body.items[0].expression == ast.Variable("n")

    def test_match_where(self):
        clause = single_match("MATCH (n) WHERE n.x = 1 RETURN n")
        assert clause.where is not None

    def test_optional_match(self):
        clause = single_match("OPTIONAL MATCH (n) RETURN n")
        assert clause.optional

    def test_unwind(self):
        q = parse("UNWIND [1,2] AS x RETURN x")
        clause = q.clauses[0]
        assert isinstance(clause, ast.UnwindClause)
        assert clause.alias == "x"

    def test_with_where(self):
        q = parse("MATCH (n) WITH n.x AS x WHERE x > 1 RETURN x")
        with_clause = q.clauses[1]
        assert isinstance(with_clause, ast.WithClause)
        assert with_clause.where is not None
        assert with_clause.body.items[0].alias == "x"

    def test_return_distinct(self):
        q = parse("MATCH (n) RETURN DISTINCT n")
        assert q.return_clause.body.distinct

    def test_order_skip_limit(self):
        q = parse("MATCH (n) RETURN n ORDER BY n.x DESC, n.y SKIP 1 LIMIT 2")
        body = q.return_clause.body
        assert len(body.order_by) == 2
        assert body.order_by[0].ascending is False
        assert body.order_by[1].ascending is True
        assert body.skip == ast.Literal(1)
        assert body.limit == ast.Literal(2)

    def test_aliases(self):
        q = parse("MATCH (n) RETURN n.x AS foo, n.y")
        items = q.return_clause.body.items
        assert items[0].alias == "foo"
        assert items[1].alias is None

    def test_union(self):
        q = parse("MATCH (a:X) RETURN a UNION MATCH (a:Y) RETURN a")
        assert isinstance(q, UnionQuery)
        assert not q.all
        assert len(q.queries) == 2

    def test_union_all(self):
        q = parse("RETURN 1 AS x UNION ALL RETURN 2 AS x")
        assert isinstance(q, UnionQuery)
        assert q.all

    def test_mixed_union_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("RETURN 1 AS x UNION RETURN 2 AS x UNION ALL RETURN 3 AS x")

    def test_return_star(self):
        body = parse("MATCH (n) RETURN *").return_clause.body
        assert body.star and body.items == ()

    def test_return_star_with_explicit_items(self):
        body = parse("MATCH (n) RETURN *, n.x AS x").return_clause.body
        assert body.star and len(body.items) == 1

    def test_with_star(self):
        q = parse("MATCH (n) WITH * RETURN n")
        assert q.clauses[1].body.star

    def test_star_after_items_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (n) RETURN n, *")

    def test_missing_return_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (n)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (n) RETURN n n")

    def test_trailing_semicolon_allowed(self):
        parse("RETURN 1 AS one;")


class TestNodePatterns:
    def test_anonymous_node(self):
        clause = single_match("MATCH () RETURN 1 AS one")
        node = clause.pattern.parts[0].elements[0]
        assert node.variable is None
        assert node.labels == ()

    def test_labels(self):
        clause = single_match("MATCH (n:Post:Pinned) RETURN n")
        node = clause.pattern.parts[0].elements[0]
        assert node.labels == ("Post", "Pinned")

    def test_property_map(self):
        clause = single_match("MATCH (n:Post {lang: 'en', score: 1}) RETURN n")
        node = clause.pattern.parts[0].elements[0]
        assert dict(node.properties) == {
            "lang": ast.Literal("en"),
            "score": ast.Literal(1),
        }

    def test_multiple_parts(self):
        clause = single_match("MATCH (a), (b) RETURN a")
        assert len(clause.pattern.parts) == 2

    def test_named_path(self):
        clause = single_match("MATCH p = (a)-[:T]->(b) RETURN p")
        assert clause.pattern.parts[0].variable == "p"


class TestRelationshipPatterns:
    def rel(self, query):
        clause = single_match(query)
        return clause.pattern.parts[0].elements[1]

    def test_directions(self):
        assert self.rel("MATCH (a)-[:T]->(b) RETURN a").direction == "out"
        assert self.rel("MATCH (a)<-[:T]-(b) RETURN a").direction == "in"
        assert self.rel("MATCH (a)-[:T]-(b) RETURN a").direction == "both"

    def test_bare_relationships(self):
        assert self.rel("MATCH (a)-->(b) RETURN a").direction == "out"
        assert self.rel("MATCH (a)<--(b) RETURN a").direction == "in"
        assert self.rel("MATCH (a)--(b) RETURN a").direction == "both"

    def test_variable_and_types(self):
        rel = self.rel("MATCH (a)-[e:T|U]->(b) RETURN a")
        assert rel.variable == "e"
        assert rel.types == ("T", "U")

    def test_alternative_types_with_colons(self):
        rel = self.rel("MATCH (a)-[:T|:U]->(b) RETURN a")
        assert rel.types == ("T", "U")

    def test_var_length_default(self):
        rel = self.rel("MATCH (a)-[:T*]->(b) RETURN a")
        assert rel.var_length
        assert (rel.min_hops, rel.max_hops) == (1, None)

    def test_var_length_exact(self):
        rel = self.rel("MATCH (a)-[:T*3]->(b) RETURN a")
        assert (rel.min_hops, rel.max_hops) == (3, 3)

    def test_var_length_range(self):
        rel = self.rel("MATCH (a)-[:T*1..4]->(b) RETURN a")
        assert (rel.min_hops, rel.max_hops) == (1, 4)

    def test_var_length_open_low(self):
        rel = self.rel("MATCH (a)-[:T*..4]->(b) RETURN a")
        assert (rel.min_hops, rel.max_hops) == (1, 4)

    def test_var_length_open_high(self):
        rel = self.rel("MATCH (a)-[:T*2..]->(b) RETURN a")
        assert (rel.min_hops, rel.max_hops) == (2, None)

    def test_var_length_zero(self):
        rel = self.rel("MATCH (a)-[:T*0..2]->(b) RETURN a")
        assert (rel.min_hops, rel.max_hops) == (0, 2)

    def test_invalid_range_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (a)-[:T*3..1]->(b) RETURN a")

    def test_rel_property_map(self):
        rel = self.rel("MATCH (a)-[e:T {w: 2}]->(b) RETURN a")
        assert dict(rel.properties) == {"w": ast.Literal(2)}

    def test_chain(self):
        clause = single_match("MATCH (a)-[:T]->(b)<-[:U]-(c) RETURN a")
        elements = clause.pattern.parts[0].elements
        assert len(elements) == 5
        assert elements[3].direction == "in"


class TestExpressions:
    def test_literals(self):
        assert parse_expression("1") == ast.Literal(1)
        assert parse_expression("1.5") == ast.Literal(1.5)
        assert parse_expression("'x'") == ast.Literal("x")
        assert parse_expression("TRUE") == ast.Literal(True)
        assert parse_expression("null") == ast.Literal(None)

    def test_negative_literal_folded(self):
        assert parse_expression("-3") == ast.Literal(-3)

    def test_list_and_map(self):
        assert parse_expression("[1, 2]") == ast.ListLiteral(
            (ast.Literal(1), ast.Literal(2))
        )
        assert parse_expression("{a: 1}") == ast.MapLiteral((("a", ast.Literal(1)),))

    def test_parameter(self):
        assert parse_expression("$p") == ast.Parameter("p")

    def test_precedence_arithmetic(self):
        # 1 + 2 * 3 parses as 1 + (2 * 3)
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.Arithmetic) and expr.op == "+"
        assert isinstance(expr.right, ast.Arithmetic) and expr.right.op == "*"

    def test_power_right_associative(self):
        expr = parse_expression("2 ^ 3 ^ 2")
        assert expr.op == "^"
        assert isinstance(expr.right, ast.Arithmetic) and expr.right.op == "^"

    def test_boolean_precedence(self):
        # a OR b AND c parses as a OR (b AND c)
        expr = parse_expression("a OR b AND c")
        assert isinstance(expr, ast.BooleanOp) and expr.op == "OR"
        assert isinstance(expr.operands[1], ast.BooleanOp)
        assert expr.operands[1].op == "AND"

    def test_not(self):
        expr = parse_expression("NOT a")
        assert isinstance(expr, ast.Not)

    def test_chained_comparison(self):
        expr = parse_expression("1 < x <= 10")
        assert isinstance(expr, ast.Comparison)
        assert expr.ops == ("<", "<=")

    def test_string_predicates(self):
        for kind, text in [
            ("STARTS WITH", "a STARTS WITH 'x'"),
            ("ENDS WITH", "a ENDS WITH 'x'"),
            ("CONTAINS", "a CONTAINS 'x'"),
        ]:
            expr = parse_expression(text)
            assert isinstance(expr, ast.StringPredicate)
            assert expr.kind == kind

    def test_in(self):
        expr = parse_expression("x IN [1, 2]")
        assert isinstance(expr, ast.In)

    def test_is_null(self):
        assert parse_expression("x IS NULL") == ast.IsNull(ast.Variable("x"))
        assert parse_expression("x IS NOT NULL") == ast.IsNull(
            ast.Variable("x"), negated=True
        )

    def test_property_chain(self):
        expr = parse_expression("a.b.c")
        assert isinstance(expr, ast.Property)
        assert expr.key == "c"
        assert isinstance(expr.subject, ast.Property)

    def test_subscript_and_slice(self):
        assert isinstance(parse_expression("xs[0]"), ast.Subscript)
        sliced = parse_expression("xs[1..3]")
        assert isinstance(sliced, ast.Slice)
        open_slice = parse_expression("xs[..2]")
        assert isinstance(open_slice, ast.Slice)
        assert open_slice.low is None

    def test_function_call(self):
        expr = parse_expression("size(xs)")
        assert expr == ast.FunctionCall("size", (ast.Variable("xs"),))

    def test_function_name_lowercased(self):
        assert parse_expression("SIZE(xs)").name == "size"

    def test_count_star(self):
        assert isinstance(parse_expression("count(*)"), ast.CountStar)

    def test_count_distinct(self):
        expr = parse_expression("count(DISTINCT x)")
        assert expr.distinct

    def test_exists(self):
        expr = parse_expression("exists(n.p)")
        assert expr.name == "exists"

    def test_label_predicate(self):
        expr = parse_expression("n:Post:Pinned")
        assert expr == ast.HasLabel(ast.Variable("n"), ("Post", "Pinned"))

    def test_case_generic(self):
        expr = parse_expression("CASE WHEN x > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(expr, ast.CaseExpr)
        assert expr.default == ast.Literal("small")

    def test_case_simple_normalised(self):
        expr = parse_expression("CASE x WHEN 1 THEN 'one' END")
        condition, _ = expr.whens[0]
        assert isinstance(condition, ast.Comparison)

    def test_case_without_when_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse_expression("CASE ELSE 1 END")

    def test_parenthesised(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.Arithmetic)

    def test_unary_plus_dropped(self):
        assert parse_expression("+5") == ast.Literal(5)


class TestAstHelpers:
    def test_free_variables(self):
        expr = parse_expression("a.x + b > size(c)")
        assert ast.free_variables(expr) == {"a", "b", "c"}

    def test_property_accesses(self):
        expr = parse_expression("a.x = b.y AND a.z IS NULL")
        assert ast.property_accesses(expr) == {("a", "x"), ("b", "y"), ("a", "z")}

    def test_walk_visits_pattern_properties(self):
        clause = single_match("MATCH (n {k: $v}) RETURN n")
        nodes = list(ast.walk(clause))
        assert any(isinstance(n, ast.Parameter) for n in nodes)
