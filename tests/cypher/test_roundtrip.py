"""Parser ↔ unparser round-trip over query *strings*.

The contract under test is ``parse(unparse(parse(q))) == parse(q)``: a
query that parses must unparse to text that reparses to the identical
AST.  Complements :mod:`tests.cypher.test_roundtrip_property` (which
builds random ASTs directly): here the starting point is always a query
string — a curated corpus spanning the supported surface plus a seeded
random generator composing MATCH patterns, predicates and projections
the way users write them.
"""

import random

import pytest

from repro.cypher import parse, unparse

#: one query per supported construct family, including the combinations
#: the unparser has to parenthesise or order carefully
CORPUS = [
    # projections
    "MATCH (n) RETURN *",
    "MATCH (a)-[k:KNOWS]->(b) RETURN *, a.name AS name",
    "MATCH (n) WITH * RETURN n",
    "MATCH (n) WITH DISTINCT * RETURN n",
    "MATCH (n) RETURN DISTINCT n.x AS x ORDER BY x DESC SKIP 2 LIMIT 3",
    "MATCH (n) WITH n.x AS x WHERE x > 0 RETURN x ORDER BY x",
    # patterns
    "MATCH (a:Post {lang: 'en', score: 3})-[e:REPLY|LIKES]->(b:Comm) RETURN a, e, b",
    "MATCH (a)<-[:REPLY*1..3]-(b), (b)-[:KNOWS]-(c) RETURN a, c",
    "MATCH p = (a)-[:REPLY*]->(b) RETURN p",
    "OPTIONAL MATCH (a:Person)-[:KNOWS]->(b) RETURN a, b",
    "MATCH (a) OPTIONAL MATCH (a)-[:LIKES]->(p) WHERE p.lang = 'en' RETURN a, p",
    # expressions
    "MATCH (n) WHERE n.name STARTS WITH 'a' OR n.name ENDS WITH 'z' RETURN n",
    "MATCH (n) WHERE n.name CONTAINS 'mid' XOR n:Post RETURN n",
    "MATCH (n) WHERE NOT (n.x IS NULL) AND n.y IN [1, 2, 3] RETURN n",
    "MATCH (n) RETURN CASE WHEN n.x > 1 THEN 'big' WHEN n.x = 1 THEN 'one' ELSE 'small' END AS size",
    "MATCH (n) RETURN {k: n.x, nested: {l: [1, n.y]}} AS m",
    "MATCH (n) RETURN n.list[0] AS head, n.list[1..3] AS mid",
    "MATCH (n) RETURN (n.x + 1) * -n.y % 2 AS v",
    "MATCH (n) WHERE 1 < n.x <= 5 RETURN n",
    "RETURN $param AS p, coalesce($other, 0) AS q",
    # aggregates
    "MATCH (n) RETURN n.lang AS lang, count(*) AS c, collect(DISTINCT n.x) AS xs",
    "MATCH (n) WITH n.lang AS lang, sum(n.score) AS total RETURN lang, total",
    # multi-clause shapes
    "UNWIND [1, 2, 3] AS v WITH v WHERE v > 1 RETURN v * 2 AS doubled",
    "MATCH (a) WITH a.x AS x MATCH (b) WHERE b.y = x RETURN b",
    "RETURN 1 AS x UNION RETURN 2 AS x",
    "MATCH (a:X) RETURN a.v AS v UNION ALL MATCH (b:Y) RETURN b.v AS v",
    # updating queries
    "CREATE (:Post {lang: 'en'})-[:REPLY]->(:Comm)",
    "MATCH (n:Post) SET n.score = n.score + 1, n:Pinned",
    "MATCH (n:Post) REMOVE n.score, n:Pinned",
    "MATCH (n) DETACH DELETE n",
    "MERGE (n:Post {lang: 'en'}) RETURN n",
    "MATCH (a), (b) CREATE (a)-[:KNOWS]->(b)",
]


@pytest.mark.parametrize("query", CORPUS)
def test_corpus_roundtrip(query):
    first = parse(query)
    rendered = unparse(first)
    assert parse(rendered) == first, (
        f"unparsed form {rendered!r} changed the AST"
    )


LABELS = ("Post", "Comm", "Person")
TYPES = ("REPLY", "KNOWS", "LIKES")
KEYS = ("lang", "score", "name")


def _random_pattern(rng: random.Random, variables: list[str]) -> str:
    """One pattern part: nodes and relationships with random decorations."""

    def node() -> str:
        parts = ""
        if rng.random() < 0.8:
            name = f"n{len(variables)}"
            variables.append(name)
            parts = name
        if rng.random() < 0.6:
            parts += ":" + rng.choice(LABELS)
        if rng.random() < 0.25:
            parts += f" {{{rng.choice(KEYS)}: {rng.randrange(5)}}}"
        return f"({parts})"

    text = node()
    for _ in range(rng.randrange(3)):
        rel = ""
        if rng.random() < 0.4:
            name = f"e{len(variables)}"
            variables.append(name)
            rel = name
        if rng.random() < 0.7:
            rel += ":" + rng.choice(TYPES)
        if rng.random() < 0.2:
            hops = rng.choice(("*", "*1..2", "*2..3"))
            rel += hops
        arrow = rng.choice(("-[{}]->", "<-[{}]-", "-[{}]-"))
        text += arrow.format(rel) + node()
    return text


def _random_query(rng: random.Random) -> str:
    variables: list[str] = []
    patterns = [_random_pattern(rng, variables)]
    while rng.random() < 0.2:
        patterns.append(_random_pattern(rng, variables))
    text = "MATCH " + ", ".join(patterns)
    if variables and rng.random() < 0.5:
        subject = rng.choice(variables)
        predicate = rng.choice(
            (
                f"{subject}.{rng.choice(KEYS)} > {rng.randrange(10)}",
                f"{subject}.{rng.choice(KEYS)} IS NOT NULL",
                f"NOT {subject}.{rng.choice(KEYS)} IN [1, 2]",
                f"{subject}.{rng.choice(KEYS)} = $p",
            )
        )
        text += " WHERE " + predicate
    if not variables:
        return text + " RETURN 1 AS one"
    if rng.random() < 0.3:
        text += " RETURN *"
    else:
        chosen = rng.sample(variables, rng.randint(1, len(variables)))
        items = ", ".join(
            v if rng.random() < 0.5 else f"{v}.{rng.choice(KEYS)} AS c{i}"
            for i, v in enumerate(chosen)
        )
        distinct = "DISTINCT " if rng.random() < 0.2 else ""
        text += f" RETURN {distinct}{items}"
        if rng.random() < 0.2:
            text += f" LIMIT {rng.randint(1, 9)}"
    return text


@pytest.mark.parametrize("seed", range(30))
def test_random_queries_roundtrip(seed):
    rng = random.Random(2900 + seed)
    for _ in range(20):
        query = _random_query(rng)
        first = parse(query)
        rendered = unparse(first)
        assert parse(rendered) == first, (
            f"{query!r} -> {rendered!r} changed the AST"
        )


def test_unparse_is_idempotent_on_corpus():
    for query in CORPUS:
        once = unparse(parse(query))
        assert unparse(parse(once)) == once
