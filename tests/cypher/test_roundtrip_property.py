"""Property-based parser ↔ unparser round-trip.

The unparser's contract: its output reparses to an *equal* AST.  A
hypothesis generator builds random (conservative, unambiguous) expression
and query trees; any normalisation drift between the two directions is a
bug in one of them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cypher import ast
from repro.cypher.parser import parse, parse_expression
from repro.cypher.unparser import unparse, unparse_expr

VARIABLES = ("a", "b", "c", "n", "m")
KEYS = ("lang", "name", "size_", "k1")
LABELS = ("Post", "Comm", "Tag")
TYPES = ("REPLY", "KNOWS")
FUNCTIONS = ("size", "head", "toupper", "tostring", "coalesce")

literals = st.one_of(
    st.integers(min_value=-100, max_value=100).map(ast.Literal),
    st.sampled_from([True, False, None]).map(ast.Literal),
    st.text(alphabet="abc xyz", min_size=0, max_size=6).map(ast.Literal),
)

variables = st.sampled_from(VARIABLES).map(ast.Variable)


def expressions(depth=2):
    base = st.one_of(
        literals,
        variables,
        st.builds(
            ast.Property, variables, st.sampled_from(KEYS)
        ),
        st.builds(ast.Parameter, st.sampled_from(("p1", "p2"))),
    )
    if depth == 0:
        return base
    sub = expressions(depth - 1)
    return st.one_of(
        base,
        st.builds(
            lambda op, items: ast.BooleanOp(op, tuple(items)),
            st.sampled_from(("AND", "OR", "XOR")),
            st.lists(sub, min_size=2, max_size=3),
        ),
        st.builds(ast.Not, sub),
        st.builds(
            lambda left, op, right: ast.Comparison((left, right), (op,)),
            sub,
            st.sampled_from(("=", "<>", "<", ">", "<=", ">=")),
            sub,
        ),
        st.builds(
            ast.Arithmetic, st.sampled_from(("+", "-", "*", "/", "%")), sub, sub
        ),
        st.builds(lambda items: ast.ListLiteral(tuple(items)), st.lists(sub, max_size=3)),
        st.builds(
            lambda keys, values: ast.MapLiteral(
                tuple(zip(dict.fromkeys(keys), values))
            ),
            st.lists(st.sampled_from(KEYS), min_size=1, max_size=3, unique=True),
            st.lists(sub, min_size=3, max_size=3),
        ),
        st.builds(
            lambda name, args: ast.FunctionCall(name, tuple(args)),
            st.sampled_from(FUNCTIONS),
            st.lists(sub, min_size=1, max_size=2),
        ),
        st.builds(ast.In, sub, sub),
        st.builds(ast.IsNull, sub, st.booleans()),
        st.builds(
            lambda whens, default: ast.CaseExpr(tuple(whens), default),
            st.lists(st.tuples(sub, sub), min_size=1, max_size=2),
            st.one_of(st.none(), sub),
        ),
    )


@settings(max_examples=200, deadline=None)
@given(expr=expressions())
def test_expression_roundtrip(expr):
    assert parse_expression(unparse_expr(expr)) == expr


node_patterns = st.builds(
    ast.NodePattern,
    st.one_of(st.none(), st.sampled_from(VARIABLES)),
    st.lists(st.sampled_from(LABELS), max_size=2, unique=True).map(tuple),
    st.just(()),
)

relationship_patterns = st.builds(
    ast.RelationshipPattern,
    st.one_of(st.none(), st.sampled_from(("r", "e"))),
    st.lists(st.sampled_from(TYPES), max_size=2, unique=True).map(tuple),
    st.sampled_from(("out", "in", "both")),
)


@st.composite
def pattern_parts(draw):
    length = draw(st.integers(0, 2))
    elements = [draw(node_patterns)]
    used = {elements[0].variable} if elements[0].variable else set()
    for _ in range(length):
        rel = draw(relationship_patterns)
        if rel.variable in used:
            rel = ast.RelationshipPattern(None, rel.types, rel.direction)
        elif rel.variable:
            used.add(rel.variable)
        node = draw(node_patterns)
        if node.variable in used:
            node = ast.NodePattern(None, node.labels, node.properties)
        elif node.variable:
            used.add(node.variable)
        elements.extend([rel, node])
    variable = draw(st.one_of(st.none(), st.just("t")))
    if variable in used:
        variable = None
    return ast.PatternPart(variable, tuple(elements))


@settings(max_examples=150, deadline=None)
@given(part=pattern_parts(), where=st.one_of(st.none(), expressions(1)))
def test_match_return_roundtrip(part, where):
    bound = [
        e.variable
        for e in part.elements
        if getattr(e, "variable", None)
    ] or None
    items = tuple(
        ast.ReturnItem(ast.Variable(v), None) for v in (bound or ["x"])
    )
    query = ast.Query(
        (ast.MatchClause(ast.Pattern((part,)), optional=False, where=where),),
        ast.ReturnClause(ast.ProjectionBody(items, False, (), None, None)),
    )
    if bound is None:
        return  # RETURN x with x unbound is fine syntactically, still parses
    assert parse(unparse(query)) == query


@settings(max_examples=100, deadline=None)
@given(
    part=pattern_parts(),
    detach=st.booleans(),
    set_value=expressions(1),
)
def test_updating_query_roundtrip(part, detach, set_value):
    bound = [e.variable for e in part.elements if getattr(e, "variable", None)]
    if not bound:
        return
    target = bound[0]
    query = ast.UpdatingQuery(
        (
            ast.MatchClause(ast.Pattern((part,))),
            ast.SetClause(
                (
                    ast.SetProperty(
                        ast.Property(ast.Variable(target), "lang"), set_value
                    ),
                )
            ),
            ast.DeleteClause((ast.Variable(target),), detach=detach),
        ),
        None,
    )
    assert parse(unparse(query)) == query
