"""Round-trip tests: unparse(parse(q)) reparses to an equal AST."""

import pytest

from repro.cypher import parse, unparse

ROUND_TRIP_QUERIES = [
    "MATCH (n) RETURN n",
    "MATCH (n:Post:Pinned {lang: 'en'}) RETURN n.lang AS l",
    "MATCH (a)-[e:T|U]->(b) WHERE a.x > 1 RETURN a, e, b",
    "MATCH (a)<-[:T*2..4]-(b) RETURN b",
    "MATCH t = (a)-[:T*]->(b) RETURN t",
    "MATCH (a)-[:T]-(b) RETURN a",
    "OPTIONAL MATCH (a)-[:T]->(b) RETURN b",
    "MATCH (n) WHERE n.x IN [1, 2, 3] RETURN n",
    "MATCH (n) WHERE n.name STARTS WITH 'a' AND NOT (n.x IS NULL) RETURN n",
    "MATCH (n) RETURN DISTINCT n.x AS x ORDER BY x DESC SKIP 1 LIMIT 2",
    "MATCH (n) WITH n.x AS x WHERE x > 0 RETURN x",
    "UNWIND [1, 2] AS v RETURN v * 2 AS doubled",
    "MATCH (n) RETURN count(*) AS c, collect(DISTINCT n.x) AS xs",
    "MATCH (n) RETURN CASE WHEN n.x > 1 THEN 'big' ELSE 'small' END AS size",
    "MATCH (n) RETURN n.x + 1 AS a, -n.y AS b, n.z % 2 AS c",
    "MATCH (n) WHERE n:Post RETURN n",
    "MATCH (n) RETURN {k: n.x, l: [1, n.y]} AS m",
    "MATCH (n) RETURN n.list[0] AS head, n.list[1..2] AS mid",
    "RETURN $param AS p",
    "RETURN 1 AS x UNION ALL RETURN 2 AS x",
    "RETURN 1 AS x UNION RETURN 2 AS x",
    "MATCH (a), (b) WHERE a.x = b.x XOR a.y = b.y RETURN a",
]


@pytest.mark.parametrize("query", ROUND_TRIP_QUERIES)
def test_round_trip(query):
    first = parse(query)
    rendered = unparse(first)
    second = parse(rendered)
    assert first == second, f"unparsed form {rendered!r} changed the AST"


def test_unparse_is_stable():
    """unparse ∘ parse is idempotent on its own output."""
    for query in ROUND_TRIP_QUERIES:
        once = unparse(parse(query))
        twice = unparse(parse(once))
        assert once == twice
