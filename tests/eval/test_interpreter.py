"""Tests for the one-shot interpreter (baseline/oracle) across the query
fragment, plus stage-equivalence checks (GRA ≡ NRA ≡ FRA evaluation)."""

import pytest

from repro import PropertyGraph, QueryEngine
from repro.compiler import compile_query
from repro.errors import EvaluationError
from repro.eval import Interpreter, enumerate_trails, evaluate_plan
from repro.graph.values import ListValue, PathValue


@pytest.fixture
def graph():
    """Small social graph: 2 posts, 3 comments, 2 persons."""
    g = PropertyGraph()
    # posts 1, 2; comments 3, 4, 5; persons 6, 7
    g.add_vertex(labels=["Post"], properties={"lang": "en", "score": 10})
    g.add_vertex(labels=["Post"], properties={"lang": "de", "score": 5})
    g.add_vertex(labels=["Comm"], properties={"lang": "en"})
    g.add_vertex(labels=["Comm"], properties={"lang": "en"})
    g.add_vertex(labels=["Comm"], properties={"lang": "de"})
    g.add_vertex(labels=["Person"], properties={"name": "ann"})
    g.add_vertex(labels=["Person"], properties={"name": "bob"})
    g.add_edge(1, 3, "REPLY")
    g.add_edge(3, 4, "REPLY")
    g.add_edge(2, 5, "REPLY")
    g.add_edge(1, 6, "HAS_CREATOR")
    g.add_edge(2, 6, "HAS_CREATOR")
    g.add_edge(6, 7, "KNOWS")
    return g


@pytest.fixture
def engine(graph):
    return QueryEngine(graph)


def rows(engine, query, **params):
    return engine.evaluate(query, params or None).rows()


class TestBasicMatching:
    def test_label_scan(self, engine):
        assert rows(engine, "MATCH (p:Post) RETURN p") == [(1,), (2,)]

    def test_multi_label(self, graph, engine):
        graph.add_label(1, "Pinned")
        assert rows(engine, "MATCH (p:Post:Pinned) RETURN p") == [(1,)]

    def test_unlabelled_scan(self, engine):
        assert len(rows(engine, "MATCH (n) RETURN n")) == 7

    def test_property_filter(self, engine):
        assert rows(engine, "MATCH (p:Post) WHERE p.lang = 'en' RETURN p") == [(1,)]

    def test_pattern_property_map(self, engine):
        assert rows(engine, "MATCH (p:Post {lang: 'de'}) RETURN p") == [(2,)]

    def test_single_hop(self, engine):
        assert rows(engine, "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c") == [
            (1, 3),
            (2, 5),
        ]

    def test_reverse_direction(self, engine):
        assert rows(engine, "MATCH (c:Comm)<-[:REPLY]-(p:Post) RETURN p, c") == [
            (1, 3),
            (2, 5),
        ]

    def test_undirected(self, engine):
        found = rows(engine, "MATCH (c:Comm)-[:REPLY]-(x) RETURN c, x")
        assert (3, 1) in found and (3, 4) in found and (4, 3) in found

    def test_edge_variable(self, engine):
        result = rows(engine, "MATCH (a)-[e:KNOWS]->(b) RETURN e")
        assert len(result) == 1

    def test_type_alternatives(self, engine):
        result = rows(engine, "MATCH (a:Post)-[e:REPLY|HAS_CREATOR]->(b) RETURN b")
        assert len(result) == 4

    def test_chain_pattern(self, engine):
        assert rows(
            engine, "MATCH (p:Post)-[:REPLY]->(:Comm)-[:REPLY]->(c:Comm) RETURN p, c"
        ) == [(1, 4)]

    def test_cartesian_product(self, engine):
        result = rows(engine, "MATCH (a:Post), (b:Person) RETURN a, b")
        assert len(result) == 4

    def test_shared_variable_joins(self, engine):
        result = rows(
            engine,
            "MATCH (p:Post)-[:REPLY]->(c), (p)-[:HAS_CREATOR]->(who) RETURN p, c, who",
        )
        assert (1, 3, 6) in result

    def test_parameters(self, engine):
        assert rows(
            engine, "MATCH (p:Post) WHERE p.lang = $lang RETURN p", lang="de"
        ) == [(2,)]


class TestVarLength:
    def test_unbounded(self, engine):
        result = rows(engine, "MATCH (p:Post)-[:REPLY*]->(c) RETURN p, c")
        assert sorted(result) == [(1, 3), (1, 4), (2, 5)]

    def test_bounds(self, engine):
        assert rows(engine, "MATCH (p:Post)-[:REPLY*2..2]->(c) RETURN p, c") == [(1, 4)]

    def test_zero_hops_includes_source(self, engine):
        result = rows(engine, "MATCH (p:Post)-[:REPLY*0..1]->(x) RETURN p, x")
        assert (1, 1) in result and (1, 3) in result

    def test_path_value(self, engine):
        result = rows(engine, "MATCH t = (p:Post)-[:REPLY*2..2]->(c) RETURN t")
        (path,) = result[0]
        assert isinstance(path, PathValue)
        assert path.vertices == (1, 3, 4)

    def test_mixed_path(self, engine):
        result = rows(
            engine,
            "MATCH t = (who:Person)<-[:HAS_CREATOR]-(p:Post)-[:REPLY*]->(c:Comm) RETURN t",
        )
        vertices = {r[0].vertices for r in result}
        assert (6, 1, 3) in vertices and (6, 1, 3, 4) in vertices

    def test_edge_list_variable(self, engine):
        result = rows(engine, "MATCH (p:Post)-[es:REPLY*2..2]->(c) RETURN es")
        assert result == [(ListValue((1, 2)),)]

    def test_trail_semantics_no_repeated_edge(self):
        g = PropertyGraph()
        a = g.add_vertex(labels=["X"])
        b = g.add_vertex()
        g.add_edge(a, b, "T")
        g.add_edge(b, a, "T")
        engine = QueryEngine(g)
        result = rows(engine, "MATCH (s:X)-[:T*]->(x) RETURN x")
        # trails: a->b and a->b->a; never reuse an edge
        assert sorted(result) == [(a,), (b,)]

    def test_undirected_var_length(self, engine):
        result = rows(engine, "MATCH (c:Comm)-[:REPLY*]-(x) RETURN c, x")
        assert (4, 1) in result  # 4 —REPLY— 3 —REPLY— 1 traversed backwards


class TestTrailEnumeration:
    def test_diamond_counts_all_trails(self):
        g = PropertyGraph()
        a, b, c, d = (g.add_vertex() for _ in range(4))
        g.add_edge(a, b, "T")
        g.add_edge(a, c, "T")
        g.add_edge(b, d, "T")
        g.add_edge(c, d, "T")
        trails = list(enumerate_trails(g, a, ("T",), "out", 1, None))
        ends = [end for end, _ in trails]
        assert ends.count(d) == 2  # two distinct trails a→d

    def test_cycle_terminates(self):
        g = PropertyGraph()
        a, b = g.add_vertex(), g.add_vertex()
        g.add_edge(a, b, "T")
        g.add_edge(b, a, "T")
        trails = list(enumerate_trails(g, a, ("T",), "out", 1, None))
        assert len(trails) == 2

    def test_missing_vertex_yields_nothing(self):
        assert list(enumerate_trails(PropertyGraph(), 1, (), "out", 1, None)) == []


class TestProjectionsAndAggregates:
    def test_expressions_in_return(self, engine):
        assert rows(engine, "MATCH (p:Post) RETURN p.score * 2 AS s") == [(10,), (20,)]

    def test_count_star(self, engine):
        assert rows(engine, "MATCH (c:Comm) RETURN count(*) AS n") == [(3,)]

    def test_count_on_empty_is_zero(self, empty_engine):
        assert rows(empty_engine, "MATCH (c:Comm) RETURN count(*) AS n") == [(0,)]

    def test_grouped_count(self, engine):
        assert rows(
            engine, "MATCH (c:Comm) RETURN c.lang AS lang, count(*) AS n"
        ) == [("de", 1), ("en", 2)]

    def test_sum_avg_min_max(self, engine):
        assert rows(
            engine,
            "MATCH (p:Post) RETURN sum(p.score) AS s, avg(p.score) AS a, "
            "min(p.score) AS lo, max(p.score) AS hi",
        ) == [(15, 7.5, 5, 10)]

    def test_collect_distinct(self, engine):
        assert rows(
            engine, "MATCH (c:Comm) RETURN collect(DISTINCT c.lang) AS langs"
        ) == [(ListValue(("de", "en")),)]

    def test_aggregate_inside_expression(self, engine):
        assert rows(engine, "MATCH (c:Comm) RETURN count(*) + 1 AS n") == [(4,)]

    def test_distinct(self, engine):
        assert rows(engine, "MATCH (c:Comm) RETURN DISTINCT c.lang AS l") == [
            ("de",),
            ("en",),
        ]

    def test_labels_function(self, engine):
        assert rows(engine, "MATCH (p:Post) WHERE p.lang='en' RETURN labels(p) AS l") == [
            (ListValue(("Post",)),)
        ]

    def test_type_function(self, engine):
        assert rows(engine, "MATCH (:Person)-[e]->(:Person) RETURN type(e) AS t") == [
            ("KNOWS",)
        ]

    def test_properties_function(self, engine):
        (props,) = rows(engine, "MATCH (p:Post {lang:'de'}) RETURN properties(p) AS m")[0]
        assert props.to_dict() == {"lang": "de", "score": 5}

    def test_label_predicate_in_where(self, engine):
        assert len(rows(engine, "MATCH (n) WHERE n:Post RETURN n")) == 2


class TestReturnStar:
    def test_expands_to_pattern_variables_in_order(self, engine):
        assert rows(
            engine, "MATCH (a:Person)-[k:KNOWS]->(b:Person) RETURN *"
        ) == rows(
            engine, "MATCH (a:Person)-[k:KNOWS]->(b:Person) RETURN a, k, b"
        )

    def test_anonymous_pattern_variables_stay_hidden(self, engine):
        assert rows(
            engine, "MATCH (a:Person)-[:KNOWS]->(:Person) RETURN *"
        ) == rows(engine, "MATCH (a:Person)-[:KNOWS]->(:Person) RETURN a")

    def test_star_plus_explicit_items(self, engine):
        assert rows(engine, "MATCH (p:Person) RETURN *, p.name AS n") == rows(
            engine, "MATCH (p:Person) RETURN p, p.name AS n"
        )

    def test_with_star_carries_scope(self, engine):
        assert rows(
            engine,
            "MATCH (p:Post)-[:REPLY]->(c:Comm) WITH *, p.lang AS l "
            "RETURN l, c",
        ) == rows(
            engine,
            "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p.lang AS l, c",
        )

    def test_star_with_aggregate_groups_on_visible_columns(self, engine):
        assert rows(
            engine, "MATCH (c:Comm) WITH c.lang AS lang RETURN *, count(*) AS n"
        ) == [("de", 1), ("en", 2)]

    def test_registered_view_maintains_star_projection(self, graph):
        engine = QueryEngine(graph)
        view = engine.register("MATCH (a:Person)-[k:KNOWS]->(b:Person) RETURN *")
        assert view.rows() == [(6, 6, 7)]
        extra = graph.add_vertex(labels=["Person"], properties={"name": "cec"})
        graph.add_edge(7, extra, "KNOWS")
        assert sorted(view.rows()) == [(6, 6, 7), (7, 7, 8)]

    def test_star_without_scope_rejected(self, engine):
        from repro.errors import CypherSemanticError

        with pytest.raises(CypherSemanticError):
            engine.evaluate("RETURN *")
        with pytest.raises(CypherSemanticError):
            engine.evaluate("MATCH ()-[]->() RETURN *")


class TestOptionalMatchWithUnwind:
    def test_optional_match_padding(self, engine):
        result = rows(
            engine,
            "MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(:Comm)-[:REPLY]->(c) RETURN p, c",
        )
        assert sorted(result, key=lambda r: r[0]) == [(1, 4), (2, None)]

    def test_optional_match_with_where(self, engine):
        result = rows(
            engine,
            "MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(c:Comm) "
            "WHERE c.lang = p.lang RETURN p, c",
        )
        assert sorted(result, key=lambda r: r[0]) == [(1, 3), (2, 5)]

    def test_with_projection_and_filter(self, engine):
        assert rows(
            engine,
            "MATCH (p:Post) WITH p.score AS s WHERE s > 7 RETURN s",
        ) == [(10,)]

    def test_with_aggregation_then_filter(self, engine):
        assert rows(
            engine,
            "MATCH (p:Post)-[:REPLY*]->(c) WITH p, count(c) AS n WHERE n > 1 RETURN p, n",
        ) == [(1, 2)]

    def test_unwind_literal(self, engine):
        assert rows(engine, "UNWIND [3, 1, 2] AS x RETURN x") == [(1,), (2,), (3,)]

    def test_unwind_null_and_empty_produce_no_rows(self, engine):
        assert rows(engine, "UNWIND [] AS x RETURN x") == []
        assert rows(engine, "UNWIND null AS x RETURN x") == []

    def test_path_unwinding(self, engine):
        result = rows(
            engine,
            "MATCH t = (p:Post)-[:REPLY*2..2]->(c) UNWIND nodes(t) AS n RETURN n",
        )
        assert result == [(1,), (3,), (4,)]

    def test_union(self, engine):
        assert rows(
            engine,
            "MATCH (p:Post) RETURN p AS n UNION MATCH (q:Person) RETURN q AS n",
        ) == [(1,), (2,), (6,), (7,)]

    def test_union_all_keeps_duplicates(self, engine):
        result = rows(
            engine,
            "MATCH (p:Post) RETURN p.lang AS l UNION ALL MATCH (c:Comm) RETURN c.lang AS l",
        )
        assert sorted(result) == [("de",), ("de",), ("en",), ("en",), ("en",)]


class TestOrdering:
    def test_order_by(self, engine):
        assert rows(engine, "MATCH (p:Post) RETURN p.score AS s ORDER BY s DESC") == [
            (10,),
            (5,),
        ]

    def test_order_by_alias_and_expression(self, engine):
        assert rows(
            engine, "MATCH (p:Post) RETURN p.lang AS l ORDER BY p.lang"
        ) == [("de",), ("en",)]

    def test_skip_limit(self, engine):
        assert rows(
            engine, "MATCH (c:Comm) RETURN c ORDER BY c SKIP 1 LIMIT 1"
        ) == [(4,)]

    def test_limit_parameter(self, engine):
        assert len(rows(engine, "MATCH (n) RETURN n LIMIT $k", k=3)) == 3

    def test_top_k_pattern(self, engine):
        # the top-k query shape the paper's fragment excludes from IVM
        result = rows(
            engine,
            "MATCH (p:Post)-[:REPLY*]->(c) RETURN p, count(c) AS n "
            "ORDER BY n DESC LIMIT 1",
        )
        assert result == [(1, 2)]

    def test_mid_query_limit(self, engine):
        result = rows(
            engine,
            "MATCH (c:Comm) WITH c ORDER BY c LIMIT 2 MATCH (c)<-[:REPLY]-(x) RETURN c, x",
        )
        assert sorted(result) == [(3, 1), (4, 3)]

    def test_negative_limit_rejected(self, engine):
        with pytest.raises(EvaluationError):
            rows(engine, "MATCH (n) RETURN n LIMIT $k", k=-1)

    def test_ordered_result_flag(self, engine):
        assert engine.evaluate("MATCH (n) RETURN n ORDER BY n").ordered
        assert not engine.evaluate("MATCH (n) RETURN n").ordered


class TestStageEquivalence:
    """The lowering steps preserve semantics: evaluating the GRA, NRA and
    FRA trees of the same query gives identical bags."""

    QUERIES = [
        "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
        "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
        "MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(c:Comm) RETURN p, c.lang",
        "MATCH (c:Comm) RETURN c.lang AS l, count(*) AS n",
        "MATCH (a:Person)<-[:HAS_CREATOR]-(p:Post)-[:REPLY*1..2]->(c) RETURN a, c",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_gra_nra_fra_agree(self, graph, query):
        compiled = compile_query(query)
        interpreter = Interpreter(graph)
        gra = interpreter.evaluate(compiled.gra)
        nra = interpreter.evaluate(compiled.nra)
        fra = interpreter.evaluate(compiled.fra)
        optimized = interpreter.evaluate(compiled.plan)
        assert gra == nra == fra == optimized


class TestResultTable:
    def test_records_and_scalar(self, engine):
        table = engine.evaluate("MATCH (p:Post {lang:'en'}) RETURN p.score AS s")
        assert table.records() == [{"s": 10}]
        assert table.scalar() == 10

    def test_single_raises_on_many(self, engine):
        with pytest.raises(ValueError):
            engine.evaluate("MATCH (p:Post) RETURN p").single()

    def test_to_text_renders_entities(self, engine):
        text = engine.evaluate("MATCH (p:Post) RETURN p").to_text()
        assert "(1:Post)" in text

    def test_multiset(self, engine):
        bag = engine.evaluate("MATCH (c:Comm) RETURN c.lang AS l").multiset()
        assert bag == {("en",): 2, ("de",): 1}
