"""Unit tests for the property graph store: mutations, indices, events."""

import pytest

from repro.errors import DanglingEdgeError, EntityNotFoundError, GraphError
from repro.graph import (
    EdgeAdded,
    EdgePropertySet,
    EdgeRemoved,
    PropertyGraph,
    VertexAdded,
    VertexLabelAdded,
    VertexLabelRemoved,
    VertexPropertySet,
    VertexRemoved,
    graph_from_dicts,
)
from repro.graph.values import ListValue


@pytest.fixture
def graph():
    return PropertyGraph()


class TestVertices:
    def test_add_returns_sequential_ids(self, graph):
        assert graph.add_vertex() == 1
        assert graph.add_vertex() == 2

    def test_labels_indexed(self, graph):
        a = graph.add_vertex(labels=["Post"])
        b = graph.add_vertex(labels=["Post", "Pinned"])
        graph.add_vertex(labels=["Comm"])
        assert set(graph.vertices("Post")) == {a, b}
        assert set(graph.vertices("Pinned")) == {b}

    def test_vertices_without_label_iterates_all(self, graph):
        graph.add_vertex()
        graph.add_vertex(labels=["X"])
        assert len(list(graph.vertices())) == 2

    def test_properties_frozen_on_insert(self, graph):
        v = graph.add_vertex(properties={"tags": ["a", "b"]})
        assert isinstance(graph.vertex_property(v, "tags"), ListValue)

    def test_none_valued_properties_dropped(self, graph):
        v = graph.add_vertex(properties={"x": None})
        assert graph.vertex_properties(v) == {}

    def test_remove_vertex(self, graph):
        v = graph.add_vertex(labels=["Post"])
        graph.remove_vertex(v)
        assert not graph.has_vertex(v)
        assert list(graph.vertices("Post")) == []

    def test_remove_vertex_with_edges_requires_detach(self, graph):
        a, b = graph.add_vertex(), graph.add_vertex()
        graph.add_edge(a, b, "T")
        with pytest.raises(DanglingEdgeError):
            graph.remove_vertex(a)
        graph.remove_vertex(a, detach=True)
        assert graph.edge_count == 0

    def test_missing_vertex_raises(self, graph):
        with pytest.raises(EntityNotFoundError):
            graph.labels_of(99)

    def test_add_remove_label(self, graph):
        v = graph.add_vertex()
        graph.add_label(v, "X")
        assert graph.has_label(v, "X")
        graph.remove_label(v, "X")
        assert not graph.has_label(v, "X")
        assert list(graph.vertices("X")) == []

    def test_set_property_none_removes(self, graph):
        v = graph.add_vertex(properties={"k": 1})
        graph.set_vertex_property(v, "k", None)
        assert "k" not in graph.vertex_properties(v)

    def test_counts(self, graph):
        graph.add_vertex()
        a, b = graph.add_vertex(), graph.add_vertex()
        graph.add_edge(a, b, "T")
        assert graph.vertex_count == 3
        assert graph.edge_count == 1


class TestEdges:
    def test_add_edge_checks_endpoints(self, graph):
        a = graph.add_vertex()
        with pytest.raises(EntityNotFoundError):
            graph.add_edge(a, 99, "T")

    def test_type_index_and_triples(self, graph):
        a, b = graph.add_vertex(), graph.add_vertex()
        e1 = graph.add_edge(a, b, "T")
        graph.add_edge(b, a, "U")
        assert set(graph.edges("T")) == {e1}
        assert list(graph.edge_triples("T")) == [(a, e1, b)]

    def test_adjacency(self, graph):
        a, b, c = (graph.add_vertex() for _ in range(3))
        e1 = graph.add_edge(a, b, "T")
        e2 = graph.add_edge(a, c, "U")
        e3 = graph.add_edge(c, a, "T")
        assert set(graph.out_edges(a)) == {e1, e2}
        assert set(graph.out_edges(a, "T")) == {e1}
        assert set(graph.in_edges(a)) == {e3}
        assert set(graph.incident_edges(a)) == {e1, e2, e3}
        assert graph.degree(a) == 3

    def test_typed_incident_edges(self, graph):
        a, b = graph.add_vertex(), graph.add_vertex()
        e1 = graph.add_edge(a, b, "T")
        e2 = graph.add_edge(b, a, "T")
        e3 = graph.add_edge(a, b, "U")
        loop = graph.add_edge(a, a, "T")
        assert sorted(graph.incident_edges(a, "T")) == sorted([e1, e2, loop])
        assert set(graph.incident_edges(a, "U")) == {e3}
        assert list(graph.incident_edges(a, "missing")) == []
        # each edge exactly once, loops included
        assert sorted(graph.incident_edges(a)) == sorted([e1, e2, e3, loop])
        graph.remove_edge(e1)
        assert sorted(graph.incident_edges(a, "T")) == sorted([e2, loop])

    def test_endpoints_and_type(self, graph):
        a, b = graph.add_vertex(), graph.add_vertex()
        e = graph.add_edge(a, b, "T")
        assert graph.endpoints(e) == (a, b)
        assert graph.source_of(e) == a
        assert graph.target_of(e) == b
        assert graph.type_of(e) == "T"

    def test_remove_edge_cleans_indices(self, graph):
        a, b = graph.add_vertex(), graph.add_vertex()
        e = graph.add_edge(a, b, "T")
        graph.remove_edge(e)
        assert not graph.has_edge(e)
        assert list(graph.out_edges(a)) == []
        assert list(graph.edges("T")) == []

    def test_self_loop(self, graph):
        a = graph.add_vertex()
        e = graph.add_edge(a, a, "T")
        assert set(graph.out_edges(a)) == {e}
        assert set(graph.in_edges(a)) == {e}
        assert graph.degree(a) == 2

    def test_edge_properties(self, graph):
        a, b = graph.add_vertex(), graph.add_vertex()
        e = graph.add_edge(a, b, "T", properties={"w": 2})
        assert graph.edge_property(e, "w") == 2
        graph.set_edge_property(e, "w", 3)
        assert graph.edge_property(e, "w") == 3

    def test_labels_and_types_summaries(self, graph):
        a = graph.add_vertex(labels=["X"])
        b = graph.add_vertex()
        graph.add_edge(a, b, "T")
        assert graph.labels() == {"X"}
        assert graph.edge_types() == {"T"}


class TestEvents:
    def collect(self, graph):
        events = []
        graph.subscribe(events.append)
        return events

    def test_vertex_lifecycle_events(self, graph):
        events = self.collect(graph)
        v = graph.add_vertex(labels=["X"], properties={"k": 1})
        graph.remove_vertex(v)
        assert isinstance(events[0], VertexAdded)
        assert events[0].labels == {"X"}
        assert events[0].properties == {"k": 1}
        assert isinstance(events[1], VertexRemoved)
        assert events[1].properties == {"k": 1}

    def test_edge_lifecycle_events(self, graph):
        a, b = graph.add_vertex(), graph.add_vertex()
        events = self.collect(graph)
        e = graph.add_edge(a, b, "T", properties={"w": 1})
        graph.remove_edge(e)
        assert isinstance(events[0], EdgeAdded)
        assert (events[0].source, events[0].target) == (a, b)
        assert isinstance(events[1], EdgeRemoved)
        assert events[1].properties == {"w": 1}

    def test_detach_delete_emits_edge_removals_first(self, graph):
        a, b = graph.add_vertex(), graph.add_vertex()
        graph.add_edge(a, b, "T")
        events = self.collect(graph)
        graph.remove_vertex(a, detach=True)
        assert isinstance(events[0], EdgeRemoved)
        assert isinstance(events[1], VertexRemoved)

    def test_label_events(self, graph):
        v = graph.add_vertex()
        events = self.collect(graph)
        graph.add_label(v, "X")
        graph.add_label(v, "X")  # idempotent: no second event
        graph.remove_label(v, "X")
        graph.remove_label(v, "X")
        assert [type(e) for e in events] == [VertexLabelAdded, VertexLabelRemoved]

    def test_property_event_carries_old_and_new(self, graph):
        v = graph.add_vertex(properties={"k": 1})
        events = self.collect(graph)
        graph.set_vertex_property(v, "k", 2)
        event = events[0]
        assert isinstance(event, VertexPropertySet)
        assert (event.old_value, event.new_value) == (1, 2)

    def test_noop_property_set_emits_nothing(self, graph):
        v = graph.add_vertex(properties={"k": 1})
        events = self.collect(graph)
        graph.set_vertex_property(v, "k", 1)
        assert events == []

    def test_property_removal_event(self, graph):
        v = graph.add_vertex(properties={"k": 1})
        events = self.collect(graph)
        graph.set_vertex_property(v, "k", None)
        assert events[0].new_value is None

    def test_edge_property_event(self, graph):
        a, b = graph.add_vertex(), graph.add_vertex()
        e = graph.add_edge(a, b, "T")
        events = self.collect(graph)
        graph.set_edge_property(e, "w", 5)
        assert isinstance(events[0], EdgePropertySet)
        assert events[0].new_value == 5

    def test_unsubscribe(self, graph):
        events = []
        graph.subscribe(events.append)
        graph.unsubscribe(events.append)
        graph.add_vertex()
        assert events == []


class TestCopyAndBuild:
    def test_copy_is_deep_and_id_preserving(self, graph):
        a = graph.add_vertex(labels=["X"], properties={"k": 1})
        b = graph.add_vertex()
        graph.add_edge(a, b, "T")
        clone = graph.copy()
        graph.set_vertex_property(a, "k", 2)
        graph.add_vertex()
        assert clone.vertex_property(a, "k") == 1
        assert clone.vertex_count == 2
        assert set(clone.vertices("X")) == {a}
        # id counters continue past the originals
        assert clone.add_vertex() not in (a, b)

    def test_copy_does_not_copy_listeners(self, graph):
        events = []
        graph.subscribe(events.append)
        clone = graph.copy()
        clone.add_vertex()
        assert events == []

    def test_copy_preserves_typed_adjacency(self, graph):
        a, b = graph.add_vertex(), graph.add_vertex()
        e1 = graph.add_edge(a, b, "T")
        e2 = graph.add_edge(b, a, "U")
        clone = graph.copy()
        assert set(clone.out_edges(a, "T")) == {e1}
        assert set(clone.in_edges(a, "U")) == {e2}
        assert set(clone.incident_edges(a, "T")) == {e1}
        # mutating the clone's adjacency leaves the original untouched
        clone.remove_edge(e1)
        assert set(graph.out_edges(a, "T")) == {e1}

    def test_graph_from_dicts(self):
        graph, ids = graph_from_dicts(
            [
                {"key": "p", "labels": ["Post"], "lang": "en"},
                {"key": "c", "labels": ["Comm"], "lang": "en"},
            ],
            [{"src": "p", "tgt": "c", "type": "REPLY", "since": 2020}],
        )
        assert graph.vertex_property(ids["p"], "lang") == "en"
        edge = next(iter(graph.edges("REPLY")))
        assert graph.edge_property(edge, "since") == 2020

    def test_graph_from_dicts_duplicate_key(self):
        with pytest.raises(GraphError):
            graph_from_dicts([{"key": "a"}, {"key": "a"}], [])

    def test_stats(self, graph):
        a = graph.add_vertex(labels=["X"])
        b = graph.add_vertex()
        graph.add_edge(a, b, "T")
        assert graph.stats() == {
            "vertices": 2,
            "edges": 1,
            "labels": 1,
            "edge_types": 1,
        }
