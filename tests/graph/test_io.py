"""Round-trip tests for graph serialisation (JSON lines and CSV)."""

import pytest

from repro.errors import GraphError
from repro.graph import PropertyGraph
from repro.graph.io import load_csv, load_jsonl, save_csv, save_jsonl
from repro.workloads.random_graphs import random_graph


def sample_graph():
    graph = PropertyGraph()
    a = graph.add_vertex(labels=["Post"], properties={"lang": "en", "tags": ["x", "y"]})
    b = graph.add_vertex(labels=["Comm", "Pinned"], properties={"meta": {"depth": 1}})
    graph.add_vertex()  # bare vertex
    graph.add_edge(a, b, "REPLY", properties={"weight": 1.5})
    graph.add_edge(b, a, "BACK")
    return graph


def graphs_equal(a: PropertyGraph, b: PropertyGraph) -> bool:
    if a.stats() != b.stats():
        return False
    # Property values are heterogeneous (str/int/list/...), so canonicalise
    # each vertex/edge to a repr string before sorting across elements.
    def vertex_key(g, v):
        props = sorted(g.vertex_properties(v).items())
        return repr((sorted(g.labels_of(v)), props))

    a_vertices = sorted(vertex_key(a, v) for v in a.vertices())
    b_vertices = sorted(vertex_key(b, v) for v in b.vertices())
    if a_vertices != b_vertices:
        return False

    def edge_key(g, e):
        s, t = g.endpoints(e)
        return repr((g.type_of(e), s, t, sorted(g.edge_properties(e).items())))

    return sorted(edge_key(a, e) for e in a.edges()) == sorted(
        edge_key(b, e) for e in b.edges()
    )


class TestJsonl:
    def test_round_trip(self, tmp_path):
        graph = sample_graph()
        path = tmp_path / "graph.jsonl"
        save_jsonl(graph, path)
        loaded = load_jsonl(path)
        assert graphs_equal(graph, loaded)

    def test_nested_values_survive(self, tmp_path):
        graph = sample_graph()
        path = tmp_path / "graph.jsonl"
        save_jsonl(graph, path)
        loaded = load_jsonl(path)
        post = next(iter(loaded.vertices("Post")))
        assert list(loaded.vertex_property(post, "tags")) == ["x", "y"]
        pinned = next(iter(loaded.vertices("Pinned")))
        assert loaded.vertex_property(pinned, "meta")["depth"] == 1

    def test_random_graph_round_trip(self, tmp_path):
        graph = random_graph(vertices=20, edges=30, seed=4).graph
        path = tmp_path / "graph.jsonl"
        save_jsonl(graph, path)
        assert graphs_equal(graph, load_jsonl(path))

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "graph.jsonl"
        path.write_text('{"kind": "header", "version": 99}\n')
        with pytest.raises(GraphError):
            load_jsonl(path)

    def test_dangling_edge_rejected(self, tmp_path):
        path = tmp_path / "graph.jsonl"
        path.write_text(
            '{"kind": "header", "version": 1}\n'
            '{"kind": "edge", "id": 1, "source": 5, "target": 6, "type": "T", "properties": {}}\n'
        )
        with pytest.raises(GraphError):
            load_jsonl(path)

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "graph.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(GraphError):
            load_jsonl(path)

    def test_loaded_graph_queryable(self, tmp_path):
        from repro import QueryEngine

        graph = sample_graph()
        path = tmp_path / "graph.jsonl"
        save_jsonl(graph, path)
        loaded = load_jsonl(path)
        engine = QueryEngine(loaded)
        view = engine.register("MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c")
        assert len(view.rows()) == 1


class TestCsv:
    def test_round_trip(self, tmp_path):
        graph = sample_graph()
        save_csv(graph, tmp_path / "out")
        loaded = load_csv(tmp_path / "out")
        assert graphs_equal(graph, loaded)

    def test_files_created(self, tmp_path):
        save_csv(sample_graph(), tmp_path / "out")
        assert (tmp_path / "out" / "vertices.csv").exists()
        assert (tmp_path / "out" / "edges.csv").exists()

    def test_random_graph_round_trip(self, tmp_path):
        graph = random_graph(vertices=15, edges=25, seed=8).graph
        save_csv(graph, tmp_path / "out")
        assert graphs_equal(graph, load_csv(tmp_path / "out"))

    def test_dangling_edge_rejected(self, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        (out / "vertices.csv").write_text("id,labels,properties\n")
        (out / "edges.csv").write_text(
            'id,source,target,type,properties\n1,7,8,T,{}\n'
        )
        with pytest.raises(GraphError):
            load_csv(out)
