"""WAL, snapshot and crash-recovery tests."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PropertyGraph, QueryEngine
from repro.errors import GraphError
from repro.graph.persistence import (
    DurableGraph,
    WriteAheadLog,
    load_snapshot,
    read_wal,
    replay_wal,
    save_snapshot,
)


def mutate(graph):
    """A little bit of everything: every event type at least once."""
    a = graph.add_vertex(labels=["Post"], properties={"lang": "en", "tags": ["x"]})
    b = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    c = graph.add_vertex()
    e = graph.add_edge(a, b, "REPLY", properties={"w": 1})
    graph.add_edge(b, c, "REPLY")
    graph.set_vertex_property(a, "lang", "de")
    graph.set_edge_property(e, "w", 2)
    graph.add_label(c, "Tag")
    graph.remove_label(b, "Comm")
    graph.set_vertex_property(b, "lang", None)
    graph.remove_edge(e)
    graph.remove_vertex(a)
    return graph


def graph_state(graph):
    vertices = {
        v: (sorted(graph.labels_of(v)), sorted(graph.vertex_properties(v).items()))
        for v in graph.vertices()
    }
    edges = {
        e: (graph.endpoints(e), graph.type_of(e), sorted(graph.edge_properties(e).items()))
        for e in graph.edges()
    }
    return vertices, edges


class TestWal:
    def test_replay_reproduces_state(self, tmp_path):
        graph = PropertyGraph()
        with WriteAheadLog(graph, tmp_path / "wal.jsonl"):
            mutate(graph)
        replayed = replay_wal(tmp_path / "wal.jsonl")
        assert graph_state(replayed) == graph_state(graph)

    def test_ids_preserved_exactly(self, tmp_path):
        graph = PropertyGraph()
        with WriteAheadLog(graph, tmp_path / "wal.jsonl"):
            mutate(graph)
        replayed = replay_wal(tmp_path / "wal.jsonl")
        assert sorted(replayed.vertices()) == sorted(graph.vertices())
        assert sorted(replayed.edges()) == sorted(graph.edges())

    def test_close_stops_logging(self, tmp_path):
        graph = PropertyGraph()
        wal = WriteAheadLog(graph, tmp_path / "wal.jsonl")
        graph.add_vertex()
        wal.close()
        graph.add_vertex()
        assert wal.records_written == 1

    def test_torn_tail_tolerated(self, tmp_path):
        graph = PropertyGraph()
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(graph, path):
            graph.add_vertex(labels=["A"])
            graph.add_vertex(labels=["B"])
        with path.open("a") as handle:
            handle.write('{"k": "v+", "id": 3, "lab')  # crash mid-write
        replayed = replay_wal(path)
        assert replayed.vertex_count == 2

    def test_interior_corruption_rejected(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('garbage\n{"k": "v+", "id": 1, "labels": [], "props": {}}\n')
        with pytest.raises(GraphError):
            list(read_wal(path))

    def test_unknown_record_kind_rejected(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"k": "??"}\n')
        with pytest.raises(GraphError):
            replay_wal(path)

    def test_nested_values_roundtrip(self, tmp_path):
        graph = PropertyGraph()
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(graph, path):
            graph.add_vertex(properties={"meta": {"depth": [1, 2]}})
        replayed = replay_wal(path)
        (vertex,) = replayed.vertices()
        assert replayed.vertex_property(vertex, "meta")["depth"][1] == 2


class TestSnapshot:
    def test_roundtrip(self, tmp_path):
        graph = mutate(PropertyGraph())
        save_snapshot(graph, tmp_path / "snap.jsonl")
        loaded = load_snapshot(tmp_path / "snap.jsonl")
        assert graph_state(loaded) == graph_state(graph)

    def test_id_counters_restored(self, tmp_path):
        graph = PropertyGraph()
        a = graph.add_vertex()
        b = graph.add_vertex()
        graph.remove_vertex(b)  # highest id gone; counter must not reuse it
        save_snapshot(graph, tmp_path / "snap.jsonl")
        loaded = load_snapshot(tmp_path / "snap.jsonl")
        assert loaded.add_vertex() == b + 1

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "snap.jsonl"
        path.write_text(
            '{"k": "header", "version": 99, "next_vertex_id": 1, "next_edge_id": 1}\n'
        )
        with pytest.raises(GraphError):
            load_snapshot(path)


class TestDurableGraph:
    def test_fresh_directory(self, tmp_path):
        durable = DurableGraph(tmp_path / "db")
        assert durable.graph.vertex_count == 0
        assert not durable.recovered_from_snapshot
        durable.close()

    def test_recovery_from_wal_only(self, tmp_path):
        durable = DurableGraph(tmp_path / "db")
        mutate(durable.graph)
        state = graph_state(durable.graph)
        durable.close()
        recovered = DurableGraph(tmp_path / "db")
        assert graph_state(recovered.graph) == state
        assert recovered.recovered_wal_records > 0
        recovered.close()

    def test_recovery_from_snapshot_plus_tail(self, tmp_path):
        durable = DurableGraph(tmp_path / "db")
        mutate(durable.graph)
        durable.checkpoint()
        post_checkpoint = durable.graph.add_vertex(labels=["AfterCheckpoint"])
        state = graph_state(durable.graph)
        durable.close()
        recovered = DurableGraph(tmp_path / "db")
        assert recovered.recovered_from_snapshot
        assert recovered.recovered_wal_records == 1
        assert graph_state(recovered.graph) == state
        assert recovered.graph.has_label(post_checkpoint, "AfterCheckpoint")
        recovered.close()

    def test_checkpoint_truncates_wal(self, tmp_path):
        durable = DurableGraph(tmp_path / "db")
        mutate(durable.graph)
        durable.checkpoint()
        assert (tmp_path / "db" / "wal.jsonl").read_text() == ""
        durable.close()

    def test_writes_continue_after_checkpoint(self, tmp_path):
        durable = DurableGraph(tmp_path / "db")
        durable.graph.add_vertex()
        durable.checkpoint()
        durable.graph.add_vertex()
        assert durable.wal_records == 1
        durable.close()

    def test_crash_simulation_torn_tail(self, tmp_path):
        durable = DurableGraph(tmp_path / "db")
        durable.graph.add_vertex(labels=["Kept"])
        durable.close()
        with (tmp_path / "db" / "wal.jsonl").open("a") as handle:
            handle.write('{"k": "v+", "id": 99,')  # torn append
        recovered = DurableGraph(tmp_path / "db")
        assert recovered.graph.vertex_count == 1
        recovered.close()

    def test_recovered_graph_supports_views_and_updates(self, tmp_path):
        durable = DurableGraph(tmp_path / "db")
        engine = QueryEngine(durable.graph)
        engine.execute("CREATE (p:Post {lang: 'en'})-[:REPLY]->(c:Comm {lang: 'en'})")
        durable.close()

        recovered = DurableGraph(tmp_path / "db")
        engine2 = QueryEngine(recovered.graph)
        view = engine2.register(
            "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c"
        )
        assert len(view.rows()) == 1
        engine2.execute("MATCH (c:Comm) SET c.lang = 'de'")
        assert view.rows() == []
        recovered.close()
        # third generation sees the update too
        third = DurableGraph(tmp_path / "db")
        engine3 = QueryEngine(third.graph)
        assert engine3.evaluate("MATCH (c:Comm) RETURN c.lang AS l", use_views=False).rows() == [("de",)]
        third.close()


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 4), st.integers(0, 4)),
        min_size=0,
        max_size=25,
    )
)
def test_wal_replay_equivalence_property(ops, tmp_path_factory):
    """Any mutation stream replayed from its WAL reproduces the graph."""
    tmp_path = tmp_path_factory.mktemp("wal")
    graph = PropertyGraph()
    path = tmp_path / "wal.jsonl"
    with WriteAheadLog(graph, path):
        vertices: list[int] = []
        edges: list[int] = []
        for kind, x, y in ops:
            if kind == 0 or not vertices:
                vertices.append(graph.add_vertex(labels=["L%d" % (x % 3)]))
            elif kind == 1 and len(vertices) >= 2:
                edges.append(
                    graph.add_edge(
                        vertices[x % len(vertices)],
                        vertices[y % len(vertices)],
                        "T",
                    )
                )
            elif kind == 2:
                graph.set_vertex_property(
                    vertices[x % len(vertices)], "p", y if y else None
                )
            elif kind == 3 and edges:
                edge = edges.pop(x % len(edges))
                graph.remove_edge(edge)
            elif kind == 4:
                vertex = vertices[x % len(vertices)]
                if not any(True for _ in graph.incident_edges(vertex)):
                    vertices.remove(vertex)
                    graph.remove_vertex(vertex)
            elif kind == 5:
                vertex = vertices[x % len(vertices)]
                if y % 2:
                    graph.add_label(vertex, "Extra")
                else:
                    graph.remove_label(vertex, "Extra")
    replayed = replay_wal(path)
    assert graph_state(replayed) == graph_state(graph)
