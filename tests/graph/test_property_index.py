"""Property-value indexes: maintenance, lookups, matcher/MERGE usage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PropertyGraph, QueryEngine
from repro.errors import GraphError


@pytest.fixture
def graph():
    g = PropertyGraph()
    g.create_index("Tag", "name")
    return g


class TestMaintenance:
    def test_backfill_on_create(self):
        g = PropertyGraph()
        a = g.add_vertex(labels=["Tag"], properties={"name": "x"})
        g.add_vertex(labels=["Tag"], properties={"name": "y"})
        g.create_index("Tag", "name")
        assert g.lookup_index("Tag", "name", "x") == {a}

    def test_add_vertex_indexed(self, graph):
        a = graph.add_vertex(labels=["Tag"], properties={"name": "x"})
        assert graph.lookup_index("Tag", "name", "x") == {a}

    def test_remove_vertex_deindexed(self, graph):
        a = graph.add_vertex(labels=["Tag"], properties={"name": "x"})
        graph.remove_vertex(a)
        assert graph.lookup_index("Tag", "name", "x") == frozenset()

    def test_property_change_moves_bucket(self, graph):
        a = graph.add_vertex(labels=["Tag"], properties={"name": "x"})
        graph.set_vertex_property(a, "name", "z")
        assert graph.lookup_index("Tag", "name", "x") == frozenset()
        assert graph.lookup_index("Tag", "name", "z") == {a}

    def test_property_removal_deindexes(self, graph):
        a = graph.add_vertex(labels=["Tag"], properties={"name": "x"})
        graph.set_vertex_property(a, "name", None)
        assert graph.lookup_index("Tag", "name", "x") == frozenset()

    def test_label_changes_tracked(self, graph):
        a = graph.add_vertex(properties={"name": "x"})
        assert graph.lookup_index("Tag", "name", "x") == frozenset()
        graph.add_label(a, "Tag")
        assert graph.lookup_index("Tag", "name", "x") == {a}
        graph.remove_label(a, "Tag")
        assert graph.lookup_index("Tag", "name", "x") == frozenset()

    def test_unindexed_lookup_raises(self, graph):
        with pytest.raises(GraphError):
            graph.lookup_index("Nope", "name", "x")

    def test_copy_preserves_indexes(self, graph):
        a = graph.add_vertex(labels=["Tag"], properties={"name": "x"})
        clone = graph.copy()
        assert clone.has_index("Tag", "name")
        assert clone.indexes() == graph.indexes()
        assert clone.lookup_index("Tag", "name", "x") == {a}
        # the copied index is maintained — and independently of the original
        b = clone.add_vertex(labels=["Tag"], properties={"name": "x"})
        assert clone.lookup_index("Tag", "name", "x") == {a, b}
        assert graph.lookup_index("Tag", "name", "x") == {a}
        graph.set_vertex_property(a, "name", "y")
        assert clone.lookup_index("Tag", "name", "x") == {a, b}

    def test_drop_index(self, graph):
        graph.drop_index("Tag", "name")
        with pytest.raises(GraphError):
            graph.lookup_index("Tag", "name", "x")

    def test_create_index_idempotent(self, graph):
        a = graph.add_vertex(labels=["Tag"], properties={"name": "x"})
        graph.create_index("Tag", "name")
        assert graph.lookup_index("Tag", "name", "x") == {a}

    def test_indexes_listing(self, graph):
        assert graph.indexes() == (("Tag", "name"),)

    def test_rollback_restores_index(self, graph):
        a = graph.add_vertex(labels=["Tag"], properties={"name": "x"})
        with pytest.raises(RuntimeError):
            with graph.transaction():
                graph.set_vertex_property(a, "name", "y")
                graph.remove_vertex(a)
                raise RuntimeError()
        assert graph.lookup_index("Tag", "name", "x") == {a}


class TestQueryUsage:
    def test_match_uses_index_result_identical(self, graph):
        engine = QueryEngine(graph)
        engine.execute("UNWIND ['x', 'y', 'z'] AS n CREATE (t:Tag {name: n})")
        with_index = engine.execute(
            "MATCH (t:Tag {name: 'y'}) RETURN t.name AS n"
        ).rows()
        graph.drop_index("Tag", "name")
        without_index = engine.execute(
            "MATCH (t:Tag {name: 'y'}) RETURN t.name AS n"
        ).rows()
        assert with_index == without_index == [("y",)]

    def test_merge_hits_index(self, graph):
        engine = QueryEngine(graph)
        for _ in range(3):
            engine.execute("MERGE (t:Tag {name: 'only'})")
        assert graph.vertex_count == 1

    def test_index_with_parameterised_value(self, graph):
        engine = QueryEngine(graph)
        engine.execute("CREATE (t:Tag {name: 'p'})")
        rows = engine.execute(
            "MATCH (t:Tag {name: $name}) RETURN t.name AS n",
            parameters={"name": "p"},
        ).rows()
        assert rows == [("p",)]

    def test_null_valued_map_matches_nothing(self, graph):
        engine = QueryEngine(graph)
        engine.execute("CREATE (t:Tag {name: 'x'})")
        rows = engine.execute(
            "MATCH (t:Tag {name: $name}) RETURN t",
            parameters={"name": None},
        ).rows()
        assert rows == []

    def test_extra_constraints_still_verified(self, graph):
        engine = QueryEngine(graph)
        engine.execute("CREATE (t:Tag:Old {name: 'x', v: 1})")
        engine.execute("CREATE (t:Tag {name: 'x', v: 2})")
        rows = engine.execute(
            "MATCH (t:Tag:Old {name: 'x', v: 1}) RETURN t.v AS v"
        ).rows()
        assert rows == [(1,)]


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 4), st.integers(0, 2)),
        max_size=20,
    )
)
def test_index_agrees_with_scan_property(ops):
    """After any mutation stream, index lookups equal a full scan."""
    graph = PropertyGraph()
    graph.create_index("L", "k")
    values = ["a", "b", "c"]
    vertices: list[int] = []
    for kind, x, y in ops:
        if kind == 0 or not vertices:
            vertices.append(
                graph.add_vertex(labels=["L"], properties={"k": values[y]})
            )
        elif kind == 1:
            graph.set_vertex_property(vertices[x % len(vertices)], "k", values[y])
        elif kind == 2:
            vertex = vertices[x % len(vertices)]
            if graph.has_label(vertex, "L"):
                graph.remove_label(vertex, "L")
            else:
                graph.add_label(vertex, "L")
        else:
            vertex = vertices.pop(x % len(vertices))
            graph.remove_vertex(vertex)
    for value in values:
        expected = frozenset(
            v
            for v in graph.vertices("L")
            if graph.vertex_property(v, "k") == value
        )
        assert graph.lookup_index("L", "k", value) == expected
