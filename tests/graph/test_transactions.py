"""Tests for compensating transactions on the property graph."""

import pytest

from repro import PropertyGraph, QueryEngine
from repro.errors import TransactionError
from repro.graph import events as ev


def populated():
    graph = PropertyGraph()
    a = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
    b = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    e = graph.add_edge(a, b, "REPLY", properties={"weight": 1})
    return graph, a, b, e


class TestCommit:
    def test_commit_keeps_changes(self):
        graph, a, b, e = populated()
        with graph.transaction():
            graph.add_vertex(labels=["Tag"])
        assert graph.vertex_count == 3

    def test_commit_is_noop_for_listeners(self):
        graph, *_ = populated()
        seen = []
        graph.subscribe(seen.append)
        with graph.transaction():
            graph.add_vertex()
        assert len(seen) == 1  # only the actual mutation, no extra events

    def test_events_property_records_scope(self):
        graph, a, b, e = populated()
        with graph.transaction() as tx:
            graph.set_vertex_property(a, "lang", "de")
            assert len(tx.events) == 1
            assert isinstance(tx.events[0], ev.VertexPropertySet)


class TestRollback:
    def test_vertex_add_rolled_back(self):
        graph, *_ = populated()
        with pytest.raises(RuntimeError):
            with graph.transaction():
                graph.add_vertex(labels=["Tag"])
                raise RuntimeError()
        assert graph.vertex_count == 2
        assert "Tag" not in graph.labels()

    def test_vertex_remove_restored_with_id_and_state(self):
        graph, a, b, e = populated()
        graph.remove_edge(e)
        with pytest.raises(RuntimeError):
            with graph.transaction():
                graph.remove_vertex(a)
                raise RuntimeError()
        assert graph.has_vertex(a)
        assert graph.labels_of(a) == frozenset({"Post"})
        assert graph.vertex_property(a, "lang") == "en"

    def test_edge_remove_restored(self):
        graph, a, b, e = populated()
        with pytest.raises(RuntimeError):
            with graph.transaction():
                graph.remove_edge(e)
                raise RuntimeError()
        assert graph.has_edge(e)
        assert graph.endpoints(e) == (a, b)
        assert graph.edge_property(e, "weight") == 1

    def test_property_change_reverted(self):
        graph, a, *_ = populated()
        with pytest.raises(RuntimeError):
            with graph.transaction():
                graph.set_vertex_property(a, "lang", "de")
                graph.set_vertex_property(a, "lang", "fr")
                raise RuntimeError()
        assert graph.vertex_property(a, "lang") == "en"

    def test_property_creation_reverted_to_absent(self):
        graph, a, *_ = populated()
        with pytest.raises(RuntimeError):
            with graph.transaction():
                graph.set_vertex_property(a, "new", 5)
                raise RuntimeError()
        assert graph.vertex_property(a, "new") is None

    def test_label_changes_reverted(self):
        graph, a, *_ = populated()
        with pytest.raises(RuntimeError):
            with graph.transaction():
                graph.add_label(a, "Pinned")
                graph.remove_label(a, "Post")
                raise RuntimeError()
        assert graph.labels_of(a) == frozenset({"Post"})

    def test_detach_delete_fully_restored(self):
        graph, a, b, e = populated()
        with pytest.raises(RuntimeError):
            with graph.transaction():
                graph.remove_vertex(a, detach=True)
                raise RuntimeError()
        assert graph.has_vertex(a)
        assert graph.has_edge(e)
        assert graph.endpoints(e) == (a, b)

    def test_add_then_remove_same_edge_in_tx(self):
        graph, a, b, e = populated()
        with pytest.raises(RuntimeError):
            with graph.transaction():
                new_edge = graph.add_edge(b, a, "BACK")
                graph.remove_edge(new_edge)
                raise RuntimeError()
        assert graph.edge_count == 1

    def test_explicit_rollback(self):
        graph, *_ = populated()
        with graph.transaction() as tx:
            graph.add_vertex()
            tx.rollback()
        assert graph.vertex_count == 2

    def test_view_consistent_through_rollback(self):
        graph, a, b, e = populated()
        engine = QueryEngine(graph)
        view = engine.register(
            "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c"
        )
        assert view.rows() == [(a, b)]
        with pytest.raises(RuntimeError):
            with graph.transaction():
                graph.set_vertex_property(b, "lang", "de")
                assert view.rows() == []  # change visible inside the scope
                graph.remove_edge(e)
                raise RuntimeError()
        assert view.rows() == [(a, b)]  # compensation propagated to the view


class TestMisuse:
    def test_nested_transactions_rejected(self):
        graph = PropertyGraph()
        with graph.transaction():
            with pytest.raises(TransactionError):
                with graph.transaction():
                    pass

    def test_transaction_cannot_be_reused(self):
        graph = PropertyGraph()
        tx = graph.transaction()
        with tx:
            pass
        with pytest.raises(TransactionError):
            with tx:
                pass

    def test_in_transaction_flag(self):
        graph = PropertyGraph()
        assert not graph.in_transaction
        with graph.transaction():
            assert graph.in_transaction
        assert not graph.in_transaction

    def test_restore_vertex_conflict_rejected(self):
        graph, a, *_ = populated()
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            graph._restore_vertex(a, ["X"], {})

    def test_restore_edge_conflict_rejected(self):
        graph, a, b, e = populated()
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            graph._restore_edge(e, a, b, "REPLY", {})

    def test_restore_bumps_id_counter(self):
        graph, a, b, e = populated()
        graph.remove_edge(e)
        graph._restore_edge(e, a, b, "REPLY", {})
        assert graph.add_edge(a, b, "OTHER") != e
