"""Unit tests for the property value domain (freeze/thaw, 3VL comparisons,
paths, global ordering)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidValueError
from repro.graph.values import (
    ListValue,
    MapValue,
    PathValue,
    cypher_compare,
    cypher_eq,
    freeze_value,
    order_key,
    thaw_value,
)


class TestFreeze:
    def test_atoms_pass_through(self):
        for atom in (None, True, 1, 1.5, "x"):
            assert freeze_value(atom) == atom

    def test_list_becomes_list_value(self):
        frozen = freeze_value([1, 2, 3])
        assert isinstance(frozen, ListValue)
        assert tuple(frozen) == (1, 2, 3)

    def test_nested_list(self):
        frozen = freeze_value([1, [2, 3]])
        assert isinstance(frozen[1], ListValue)

    def test_dict_becomes_map_value(self):
        frozen = freeze_value({"a": 1, "b": [2]})
        assert isinstance(frozen, MapValue)
        assert frozen["a"] == 1
        assert isinstance(frozen["b"], ListValue)

    def test_frozen_values_are_hashable(self):
        {freeze_value([1, {"k": [True, None]}]): 1}

    def test_unsupported_type_raises(self):
        with pytest.raises(InvalidValueError):
            freeze_value(object())

    def test_non_string_map_key_raises(self):
        with pytest.raises(InvalidValueError):
            freeze_value({1: "x"})

    def test_thaw_round_trip(self):
        original = {"a": [1, 2, {"b": "c"}], "d": None}
        assert thaw_value(freeze_value(original)) == original


class TestMapValue:
    def test_immutability(self):
        m = MapValue({"a": 1})
        with pytest.raises(AttributeError):
            m.x = 1  # type: ignore[attr-defined]

    def test_lookup_and_get(self):
        m = MapValue({"a": 1})
        assert m["a"] == 1
        assert m.get("missing") is None
        with pytest.raises(KeyError):
            m["missing"]

    def test_equality_is_order_insensitive(self):
        assert MapValue({"a": 1, "b": 2}) == MapValue({"b": 2, "a": 1})
        assert hash(MapValue({"a": 1, "b": 2})) == hash(MapValue({"b": 2, "a": 1}))

    def test_contains_iter_len(self):
        m = MapValue({"a": 1, "b": 2})
        assert "a" in m and "c" not in m
        assert sorted(m) == ["a", "b"]
        assert len(m) == 2

    def test_to_dict(self):
        assert MapValue({"a": 1}).to_dict() == {"a": 1}


class TestPathValue:
    def test_structure(self):
        p = PathValue((1, 2, 3), (10, 11))
        assert p.start == 1
        assert p.end == 3
        assert len(p) == 2

    def test_zero_length_path(self):
        p = PathValue((7,), ())
        assert p.start == p.end == 7
        assert len(p) == 0

    def test_alternation_enforced(self):
        with pytest.raises(InvalidValueError):
            PathValue((1, 2), (10, 11))

    def test_repr_lists_vertices_only(self):
        # the paper's display convention: "edges are omitted from paths"
        assert repr(PathValue((1, 2, 3), (10, 11))) == "[1, 2, 3]"

    def test_contains(self):
        p = PathValue((1, 2), (10,))
        assert p.contains_edge(10) and not p.contains_edge(99)
        assert p.contains_vertex(2) and not p.contains_vertex(99)

    def test_concat(self):
        p = PathValue((1,), ()).concat(10, 2).concat(11, 3)
        assert p.vertices == (1, 2, 3)
        assert p.edges == (10, 11)

    def test_equality_and_hash(self):
        a = PathValue((1, 2), (10,))
        b = PathValue((1, 2), (10,))
        assert a == b and hash(a) == hash(b)
        assert a != PathValue((1, 2), (11,))

    def test_immutability(self):
        p = PathValue((1,), ())
        with pytest.raises(AttributeError):
            p.vertices = (2,)  # type: ignore[misc]


class TestCypherEq:
    def test_null_propagates(self):
        assert cypher_eq(None, 1) is None
        assert cypher_eq(None, None) is None

    def test_numbers_cross_type(self):
        assert cypher_eq(1, 1.0) is True
        assert cypher_eq(1, 2) is False

    def test_bool_is_not_number(self):
        assert cypher_eq(True, 1) is False

    def test_strings(self):
        assert cypher_eq("a", "a") is True
        assert cypher_eq("a", "b") is False

    def test_cross_type_is_false(self):
        assert cypher_eq("1", 1) is False

    def test_lists_elementwise(self):
        assert cypher_eq(ListValue((1, 2)), ListValue((1, 2))) is True
        assert cypher_eq(ListValue((1, 2)), ListValue((1, 3))) is False
        assert cypher_eq(ListValue((1,)), ListValue((1, 2))) is False

    def test_list_with_null_element_unknown(self):
        assert cypher_eq(ListValue((1, None)), ListValue((1, 2))) is None

    def test_list_with_null_but_definite_mismatch(self):
        assert cypher_eq(ListValue((1, None)), ListValue((2, 2))) is False

    def test_maps(self):
        assert cypher_eq(MapValue({"a": 1}), MapValue({"a": 1})) is True
        assert cypher_eq(MapValue({"a": 1}), MapValue({"a": 2})) is False
        assert cypher_eq(MapValue({"a": 1}), MapValue({"b": 1})) is False
        assert cypher_eq(MapValue({"a": None}), MapValue({"a": 1})) is None

    def test_paths_compare_like_vertex_lists(self):
        assert cypher_eq(PathValue((1, 2), (9,)), ListValue((1, 2))) is True


class TestCypherCompare:
    def test_null(self):
        assert cypher_compare(None, 1) is None

    def test_numbers(self):
        assert cypher_compare(1, 2) == -1
        assert cypher_compare(2.5, 2.5) == 0
        assert cypher_compare(3, 2.5) == 1

    def test_strings(self):
        assert cypher_compare("a", "b") == -1

    def test_booleans(self):
        assert cypher_compare(False, True) == -1

    def test_incomparable_types(self):
        assert cypher_compare(1, "a") is None
        assert cypher_compare(True, 1) is None


class TestOrderKey:
    def test_total_order_over_mixed_values(self):
        values = [
            None,
            3,
            1.5,
            "b",
            "a",
            True,
            False,
            ListValue((1,)),
            MapValue({"k": 1}),
            PathValue((1,), ()),
        ]
        ordered = sorted(values, key=order_key)
        # maps < lists < paths < strings < bools < numbers < null
        assert isinstance(ordered[0], MapValue)
        assert ordered[-1] is None

    @given(
        st.lists(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(-5, 5),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
                st.text(max_size=3),
            ),
            max_size=6,
        )
    )
    def test_order_key_is_deterministic_total_order(self, values):
        keys = [order_key(v) for v in values]
        sorted(keys)  # must not raise: keys are mutually comparable
