"""Differential and property-based tests: the IVM correctness property.

For arbitrary update streams, every registered view must equal the
full-recomputation oracle at every checkpoint — this is the executable
form of the paper's central claim (E3).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import PropertyGraph, QueryEngine
from repro.workloads.random_graphs import (
    RandomGraphState,
    random_graph,
    random_updates,
)

#: Query shapes covering every operator of the maintainable fragment.
DIFFERENTIAL_QUERIES = [
    "MATCH (p:Post) RETURN p",
    "MATCH (p:Post) WHERE p.lang = 'en' RETURN p",
    "MATCH (a)-[e:REPLY]->(b) RETURN a, b",
    "MATCH (a:Post)-[:REPLY]->(b:Comm) WHERE a.lang = b.lang RETURN a, b",
    "MATCH (a:Person)-[:KNOWS]-(b:Person) RETURN a, b",
    "MATCH t = (p:Post)-[:REPLY*..3]->(c:Comm) RETURN p, t",
    "MATCH (p:Post)-[:REPLY*0..2]->(x) RETURN p, x",
    "MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(c:Comm) RETURN p, c",
    "MATCH (c:Comm) RETURN c.lang AS l, count(*) AS n",
    "MATCH (p:Post) RETURN count(*) AS n, sum(p.score) AS s",
    "MATCH (a)-[:REPLY]->(b) RETURN DISTINCT b",
    "MATCH (p:Post)-[:REPLY*1..2]->(c) WITH p, count(c) AS n WHERE n > 1 RETURN p, n",
    "MATCH (n:Post) RETURN labels(n) AS ls, n.lang AS l",
    "MATCH (a)-[e:LIKES]->(b) WHERE e.score >= 2 RETURN a, b",
]


def checkpoint(engine, views):
    for query, view in views.items():
        incremental = view.multiset()
        oracle = engine.evaluate(query, use_views=False).multiset()
        assert incremental == oracle, (
            f"view diverged from oracle for {query!r}:\n"
            f"  incremental: {incremental}\n  oracle: {oracle}"
        )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_mixed_stream_against_oracle(seed):
    state = random_graph(vertices=15, edges=20, seed=seed)
    engine = QueryEngine(state.graph)
    views = {q: engine.register(q) for q in DIFFERENTIAL_QUERIES}
    checkpoint(engine, views)
    step = 0
    for _ in random_updates(state, 120, seed=seed + 100):
        step += 1
        if step % 15 == 0:
            checkpoint(engine, views)
    checkpoint(engine, views)


def test_views_registered_mid_stream_agree():
    state = random_graph(vertices=10, edges=15, seed=9)
    engine = QueryEngine(state.graph)
    early = engine.register(DIFFERENTIAL_QUERIES[3])
    for _ in random_updates(state, 40, seed=10):
        pass
    late = engine.register(DIFFERENTIAL_QUERIES[3])
    # a view registered after the updates sees the same world
    assert early.multiset() == late.multiset()
    for _ in random_updates(state, 40, seed=11):
        pass
    assert early.multiset() == late.multiset()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    size=st.integers(0, 12),
    operations=st.integers(0, 40),
    query=st.sampled_from(DIFFERENTIAL_QUERIES),
)
def test_property_ivm_equals_recompute(seed, size, operations, query):
    """Hypothesis: for random graphs and random update streams, the
    incrementally maintained view equals full recomputation."""
    state = random_graph(vertices=size, edges=size, seed=seed)
    engine = QueryEngine(state.graph)
    view = engine.register(query)
    for _ in random_updates(state, operations, seed=seed + 1):
        pass
    assert view.multiset() == engine.evaluate(query, use_views=False).multiset()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), operations=st.integers(1, 30))
def test_property_paths_are_consistent_trails(seed, operations):
    """Every path in the running-example view is a genuine trail of the
    current graph: edges exist, connect consecutively, and are distinct."""
    state = random_graph(vertices=8, edges=10, seed=seed)
    graph = state.graph
    engine = QueryEngine(graph)
    view = engine.register("MATCH t = (a:Post)-[:REPLY*..4]->(b) RETURN t")
    for _ in random_updates(state, operations, seed=seed + 5):
        pass
    for (path,) in view.rows():
        assert len(set(path.edges)) == len(path.edges), "edge repeated in trail"
        for i, edge in enumerate(path.edges):
            assert graph.has_edge(edge), "path references deleted edge"
            assert graph.endpoints(edge) == (
                path.vertices[i],
                path.vertices[i + 1],
            ), "path not connected"


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_insert_then_full_delete_empties_views(seed):
    """Building a graph and then deleting everything must leave every view
    (except the always-present global aggregate row) empty."""
    state = random_graph(vertices=10, edges=14, seed=seed)
    engine = QueryEngine(state.graph)
    pattern_view = engine.register("MATCH (a:Post)-[:REPLY]->(b) RETURN a, b")
    path_view = engine.register("MATCH t = (a:Post)-[:REPLY*..3]->(b) RETURN t")
    count_view = engine.register("MATCH (n:Post) RETURN count(*) AS n")
    for vertex in list(state.vertices):
        state.graph.remove_vertex(vertex, detach=True)
    assert pattern_view.multiset() == {}
    assert path_view.multiset() == {}
    assert count_view.multiset() == {(0,): 1}


def test_interleaved_registration_and_mutation_heavy():
    """A long deterministic scenario mixing registration order, mutation,
    and detach — a regression net for propagation-order bugs."""
    graph = PropertyGraph()
    engine = QueryEngine(graph)
    first = engine.register("MATCH (a:Post)-[:REPLY]->(b:Comm) RETURN a, b")
    posts = [graph.add_vertex(labels=["Post"], properties={"lang": "en"}) for _ in range(5)]
    comms = [graph.add_vertex(labels=["Comm"], properties={"lang": "en"}) for _ in range(5)]
    second = engine.register(
        "MATCH (a:Post)-[:REPLY]->(b:Comm) WHERE a.lang = b.lang RETURN a, b"
    )
    edges = [graph.add_edge(p, c, "REPLY") for p, c in zip(posts, comms)]
    third = engine.register("MATCH (a:Post)-[:REPLY]->(b:Comm) RETURN count(*) AS n")
    assert len(first.rows()) == 5
    assert len(second.rows()) == 5
    assert third.rows() == [(5,)]
    graph.remove_edge(edges[0])
    graph.set_vertex_property(posts[1], "lang", "de")
    graph.remove_vertex(comms[2], detach=True)
    for query, view in [
        ("MATCH (a:Post)-[:REPLY]->(b:Comm) RETURN a, b", first),
        (
            "MATCH (a:Post)-[:REPLY]->(b:Comm) WHERE a.lang = b.lang RETURN a, b",
            second,
        ),
        ("MATCH (a:Post)-[:REPLY]->(b:Comm) RETURN count(*) AS n", third),
    ]:
        assert view.multiset() == engine.evaluate(query, use_views=False).multiset()
