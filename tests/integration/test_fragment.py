"""E3/E4 — the paper's fragment claims as an executable matrix.

The paper (§4) claims: the openCypher fragment with unordered bags and
atomic paths is incrementally maintainable; path *unwinding* stays
supported; ordering (top-k, ORDER BY) is not.  These tests pin each cell.
"""

import pytest

from repro import QueryEngine, UnsupportedForIncrementalError, compile_query

#: (query, in_fragment) — the fragment matrix reported by
#: benchmarks/bench_tab_fragment_matrix.py
FRAGMENT_MATRIX = [
    # IVM-supported: bag-based constructs
    ("MATCH (n:Post) RETURN n", True),
    ("MATCH (n:Post) WHERE n.lang = 'en' RETURN n", True),
    ("MATCH (a:Post)-[:REPLY]->(b:Comm) RETURN a, b", True),
    ("MATCH t = (p:Post)-[:REPLY*]->(c:Comm) RETURN p, t", True),
    ("MATCH t = (p:Post)-[:REPLY*]->(c:Comm) UNWIND nodes(t) AS n RETURN n", True),
    ("MATCH (n:Post) RETURN DISTINCT n.lang AS l", True),
    ("MATCH (n:Post) RETURN n.lang AS l, count(*) AS c", True),
    ("MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(c) RETURN p, c", True),
    ("MATCH (p:Post) RETURN p AS n UNION MATCH (c:Comm) RETURN c AS n", True),
    ("MATCH (p:Post) WITH p.lang AS l, count(*) AS n WHERE n > 1 RETURN l", True),
    # excluded: ordering (ORD) constructs
    ("MATCH (n:Post) RETURN n ORDER BY n.lang", False),
    ("MATCH (n:Post) RETURN n SKIP 2", False),
    ("MATCH (n:Post) RETURN n LIMIT 3", False),
    (
        "MATCH (p:Post)-[:REPLY*]->(c) RETURN p, count(c) AS n ORDER BY n DESC LIMIT 3",
        False,  # the paper's explicit top-k example
    ),
    ("MATCH (n:Post) WITH n ORDER BY n.lang LIMIT 1 RETURN n", False),
]


@pytest.mark.parametrize("query,in_fragment", FRAGMENT_MATRIX)
def test_fragment_membership(query, in_fragment):
    assert compile_query(query).is_incremental == in_fragment


@pytest.mark.parametrize(
    "query,in_fragment", [(q, f) for q, f in FRAGMENT_MATRIX if not f]
)
def test_excluded_queries_raise_on_registration(paper_graph, query, in_fragment):
    engine = QueryEngine(paper_graph)
    with pytest.raises(UnsupportedForIncrementalError):
        engine.register(query)


@pytest.mark.parametrize(
    "query,in_fragment", [(q, f) for q, f in FRAGMENT_MATRIX if f]
)
def test_included_queries_register_and_match_oracle(paper_graph, query, in_fragment):
    engine = QueryEngine(paper_graph)
    view = engine.register(query)
    assert view.multiset() == engine.evaluate(query, use_views=False).multiset()


@pytest.mark.parametrize("query,in_fragment", FRAGMENT_MATRIX)
def test_every_query_evaluates_one_shot(paper_graph, query, in_fragment):
    """Queries outside the fragment remain supported non-incrementally."""
    QueryEngine(paper_graph).evaluate(query, use_views=False)


def test_path_unwinding_loses_order_into_bag(paper_graph):
    """§4: paths 'lose their ordering when unnested' — UNWIND produces a
    bag of vertices whose multiplicities reflect the path contents."""
    engine = QueryEngine(paper_graph)
    view = engine.register(
        "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) UNWIND nodes(t) AS n RETURN n"
    )
    assert view.multiset() == {(1,): 2, (2,): 2, (3,): 1}
