"""Full-stack integration: every subsystem in one scenario.

A durable social store is driven exclusively through Cypher write
statements, watched by incremental views (shared inputs), with a trigger,
a property index, cost-based compilation, a checkpoint, a simulated
crash, and recovery — asserting the IVM invariant (view ≡ recompute) at
every stage.
"""

import pytest

from repro import DurableGraph, QueryEngine
from repro.compiler.pipeline import compile_query
from repro.compiler.stats import GraphStatistics
from repro.workloads.snb import SNB_QUERIES

THREADS = SNB_QUERIES["thread_same_lang"]
LIKES = "MATCH (fan:Person)-[:LIKES]->(m:Post) RETURN m, count(*) AS likes"
HOT = "MATCH (m:Post:Hot) RETURN m"


def consistent(engine, views):
    for query, view in views.items():
        assert sorted(view.rows(), key=repr) == sorted(
            engine.evaluate(query, use_views=False).rows(), key=repr
        ), query


def test_full_stack_lifecycle(tmp_path):
    directory = tmp_path / "db"

    # --- generation 1: build through write statements -------------------
    durable = DurableGraph(directory)
    graph = durable.graph
    graph.create_index("Person", "name")
    engine = QueryEngine(graph)
    views = {q: engine.register(q) for q in (THREADS, LIKES, HOT)}

    # trigger: posts with >= 2 likes get :Hot
    def promote(delta):
        for (post, likes), multiplicity in delta.items():
            if multiplicity > 0 and likes is not None and likes >= 2:
                engine.execute(
                    "MATCH (m:Post) WHERE m = $post SET m:Hot",
                    parameters={"post": post},
                )

    views[LIKES].on_change(promote)

    engine.execute_script(
        """
        MERGE (alice:Person {name: 'alice'});
        MERGE (bob:Person {name: 'bob'});
        CREATE (m:Post {lang: 'en', content: 'hello'});
        MATCH (m:Post) CREATE (m)<-[:REPLY_OF]-(c:Comment {lang: 'en'});
        MATCH (c:Comment) CREATE (c)<-[:REPLY_OF]-(d:Comment {lang: 'en'});
        """
    )
    assert len(views[THREADS].rows()) == 2  # both reply chains
    consistent(engine, views)

    # likes arrive; the second one fires the trigger
    engine.execute(
        "MATCH (p:Person {name: 'alice'}), (m:Post) MERGE (p)-[:LIKES]->(m)"
    )
    assert views[HOT].rows() == []
    engine.execute(
        "MATCH (p:Person {name: 'bob'}), (m:Post) MERGE (p)-[:LIKES]->(m)"
    )
    assert len(views[HOT].rows()) == 1
    consistent(engine, views)

    # checkpoint, then a post-checkpoint write that only lives in the WAL
    durable.checkpoint()
    engine.execute("MATCH (c:Comment) SET c.lang = 'de'")
    assert views[THREADS].rows() == []
    consistent(engine, views)
    durable.close()

    # --- simulated crash: reopen from disk -------------------------------
    recovered = DurableGraph(directory)
    assert recovered.recovered_from_snapshot
    assert recovered.recovered_wal_records > 0
    graph2 = recovered.graph
    engine2 = QueryEngine(graph2)
    views2 = {q: engine2.register(q) for q in (THREADS, LIKES, HOT)}
    assert views2[THREADS].rows() == []  # the lang edit survived
    assert len(views2[HOT].rows()) == 1  # the trigger's label survived
    consistent(engine2, views2)

    # cost-based compilation still registers and agrees
    stats = GraphStatistics.from_graph(graph2)
    compiled = compile_query(LIKES, stats)
    costed_view = engine2.register(compiled)
    assert sorted(costed_view.rows(), key=repr) == sorted(
        views2[LIKES].rows(), key=repr
    )

    # undo the language edit through a write statement; threads come back
    engine2.execute("MATCH (c:Comment) SET c.lang = 'en'")
    assert len(views2[THREADS].rows()) == 2
    consistent(engine2, views2)

    # profile output reflects live traffic on the recovered engine
    profile = views2[THREADS].profile()
    assert "TransitiveClosure" in profile
    recovered.close()


def test_failed_statement_leaves_durable_state_consistent(tmp_path):
    directory = tmp_path / "db"
    durable = DurableGraph(directory)
    engine = QueryEngine(durable.graph)
    engine.execute("CREATE (a:X)-[:R]->(b:Y)")
    from repro.errors import DanglingEdgeError

    with pytest.raises(DanglingEdgeError):
        engine.execute("MATCH (a:X) DELETE a")  # still connected
    durable.close()
    # replaying the WAL (which contains the doomed writes AND their
    # compensation) reproduces the consistent state
    recovered = DurableGraph(directory)
    assert recovered.graph.vertex_count == 2
    assert recovered.graph.edge_count == 1
    recovered.close()
