"""E1 — the paper's running example (§2), end to end.

The paper's expected result table:

    p | t
    --+----------
    1 | [1, 2]
    1 | [1, 2, 3]
"""

from repro.graph.values import PathValue

from ..conftest import PAPER_QUERY


def expected_rows():
    return [
        (1, PathValue((1, 2), (1,))),
        (1, PathValue((1, 2, 3), (1, 2))),
    ]


class TestOneShot:
    def test_result_table_matches_paper(self, paper_engine):
        table = paper_engine.evaluate(PAPER_QUERY, use_views=False)
        assert table.columns == ("p", "t")
        assert table.rows() == expected_rows()

    def test_display_form_matches_paper_convention(self, paper_engine):
        table = paper_engine.evaluate(PAPER_QUERY, use_views=False)
        rendered = table.to_text()
        assert "[1, 2]" in rendered
        assert "[1, 2, 3]" in rendered

    def test_language_filter_is_load_bearing(self, paper_graph, paper_engine):
        paper_graph.set_vertex_property(2, "lang", "de")
        table = paper_engine.evaluate(PAPER_QUERY, use_views=False)
        # thread [1,2] now fails p.lang = c.lang; [1,2,3] still matches via 3
        assert [r[1].vertices for r in table.rows()] == [(1, 2, 3)]


class TestIncremental:
    def test_view_equals_one_shot(self, paper_engine):
        view = paper_engine.register(PAPER_QUERY)
        assert view.multiset() == paper_engine.evaluate(PAPER_QUERY, use_views=False).multiset()

    def test_full_update_cycle(self, paper_graph, paper_engine):
        view = paper_engine.register(PAPER_QUERY)
        # grow the thread
        c4 = paper_graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        e = paper_graph.add_edge(3, c4, "REPLY")
        assert len(view.rows()) == 3
        # shrink it back
        paper_graph.remove_edge(e)
        paper_graph.remove_vertex(c4)
        assert view.rows() == expected_rows()

    def test_example_graph_rebuild_from_scratch(self, empty_engine, empty_graph):
        view = empty_engine.register(PAPER_QUERY)
        post = empty_graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        c2 = empty_graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        c3 = empty_graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        empty_graph.add_edge(post, c2, "REPLY")
        empty_graph.add_edge(c2, c3, "REPLY")
        rows = view.rows()
        assert [(r[0], r[1].vertices) for r in rows] == [
            (post, (post, c2)),
            (post, (post, c2, c3)),
        ]
