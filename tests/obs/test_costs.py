"""Maintenance-cost attribution: per-view row-work shares.

``view_costs()`` reads the always-on node traffic counters (it needs no
``collect_metrics``), splits shared nodes' work evenly across their
reader views, and books work done by reader-less nodes (detached-LRU
residents) as ``unattributed``.  The invariant pinned throughout: the
per-view shares plus the unattributed bucket sum to the engine-wide
total exactly, up to float rounding.
"""

import random

import pytest

from repro import PropertyGraph, QueryEngine
from repro.rete.engine import IncrementalEngine

from ..rete.test_sharing import _random_op


def churn(graph, operations=30, seed=7):
    rng = random.Random(seed)
    for _ in range(operations):
        vertices = list(graph.vertices())
        edges = list(graph.edges())
        _random_op(rng, vertices, edges)(graph)


def assert_sums_to_total(costs):
    attributed = sum(entry["cost"] for entry in costs["views"])
    assert attributed + costs["unattributed"] == pytest.approx(
        costs["total"], abs=1e-6
    )


class TestAttribution:
    def test_sums_to_total_after_churn(self):
        graph = PropertyGraph()
        engine = IncrementalEngine(graph)
        engine.register("MATCH (p:Post) RETURN p.lang AS lang")
        engine.register(
            "MATCH (p:Post)-[:REPLY]->(c:Comm) "
            "WHERE p.lang = c.lang RETURN p, c"
        )
        churn(graph)
        costs = engine.view_costs()
        assert costs["unit"] == "row-work (applied_rows + emitted_rows)"
        assert costs["total"] > 0
        assert_sums_to_total(costs)
        assert [entry["view"] for entry in costs["views"]] == [0, 1]
        for entry in costs["views"]:
            assert entry["cost"] >= entry["shared_cost"] >= 0

    def test_identical_views_split_shared_work(self):
        graph = PropertyGraph()
        engine = IncrementalEngine(graph)
        query = "MATCH (p:Post) RETURN p.lang AS lang"
        engine.register(query)
        first_alone = None
        churn(graph, operations=20)
        first_alone = engine.view_costs()["views"][0]["cost"]
        engine.register(query)
        churn(graph, operations=20, seed=9)
        costs = engine.view_costs()
        first, second = costs["views"]
        # the late twin cut over at the shared plan root, so it is charged
        # a share of that node's work — but never more than the builder,
        # which also reads the upstream chain it materialised
        assert second["shared_cost"] > 0
        assert first["shared_cost"] >= second["shared_cost"]
        assert first["cost"] > first_alone  # new traffic keeps accruing
        assert_sums_to_total(costs)

    def test_no_views_means_everything_unattributed(self):
        graph = PropertyGraph()
        engine = IncrementalEngine(graph)
        view = engine.register("MATCH (p:Post) RETURN p.lang AS lang")
        churn(graph, operations=15)
        view.detach()
        costs = engine.view_costs()
        assert costs["views"] == []
        assert costs["unattributed"] == pytest.approx(costs["total"])

    def test_detached_lru_work_lands_in_unattributed(self):
        graph = PropertyGraph()
        # retain detached subplans so their nodes keep doing reader-less work
        engine = IncrementalEngine(graph, detached_cache_size=4)
        keeper = engine.register("MATCH (p:Post) RETURN p.lang AS lang")
        doomed = engine.register(
            "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c"
        )
        churn(graph, operations=15)
        doomed.detach()
        churn(graph, operations=15, seed=8)
        costs = engine.view_costs()
        assert len(costs["views"]) == 1
        assert costs["unattributed"] > 0
        assert_sums_to_total(costs)
        assert keeper.multiset() is not None

    def test_costs_need_no_metrics_flag(self):
        graph = PropertyGraph()
        engine = IncrementalEngine(graph)
        assert engine.metrics is None
        engine.register("MATCH (p:Post) RETURN p.lang AS lang")
        graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        assert engine.view_costs()["total"] > 0


class TestShardedAttribution:
    def test_merged_costs_carry_worker_and_sum(self):
        graph = PropertyGraph()
        engine = QueryEngine(graph, workers=2)
        try:
            engine.register("MATCH (p:Post) RETURN p.lang AS lang")
            engine.register(
                "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c"
            )
            churn(graph, operations=20)
            costs = engine.view_costs()
            assert len(costs["views"]) == 2
            assert {entry["view"] for entry in costs["views"]} == {0, 1}
            assert all("worker" in entry for entry in costs["views"])
            assert costs["total"] > 0
            assert_sums_to_total(costs)
        finally:
            engine.shutdown()
