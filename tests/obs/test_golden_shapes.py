"""Golden shapes of the introspection surfaces.

Pins the *structure* callers script against — profile columns,
``answer_stats`` keys, memory counters, the EXPLAIN live-stats section,
the shard-worker profile label, and the CLI observability metas — so a
refactor cannot silently change a shape dashboards and the README
examples rely on.
"""

import io
import json

from repro import PropertyGraph, QueryEngine
from repro.cli import main


def run_shell(script: str, *argv: str) -> tuple[int, str]:
    out = io.StringIO()
    status = main(list(argv), stdin=io.StringIO(script), stdout=out)
    return status, out.getvalue()


def engine_with_traffic(**flags) -> QueryEngine:
    graph = PropertyGraph()
    engine = QueryEngine(graph, **flags)
    engine.register(
        "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c"
    )
    post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
    comment = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    graph.add_edge(post, comment, "REPLY")
    return engine


class TestProfileShape:
    def test_header_columns_and_separator(self):
        engine = engine_with_traffic()
        lines = engine.views[0].profile().splitlines()
        header = lines[0]
        for column in (
            "node",
            "schema",
            "deltas",
            "rows",
            "rows/call",
            "batch fill",
            "memory",
            "cells",
        ):
            assert column in header
        assert set(lines[1]) == {"-"}
        assert len(lines) > 2  # at least one node line

    def test_shared_nodes_are_marked(self):
        engine = engine_with_traffic()
        profile = engine.views[0].profile()
        assert "(shared)" in profile

    def test_shard_view_profile_names_its_worker(self):
        graph = PropertyGraph()
        engine = QueryEngine(graph, workers=2)
        try:
            view = engine.register("MATCH (p:Post) RETURN p.lang AS lang")
            profile = view.profile()
            first, rest = profile.split("\n", 1)
            assert first == f"-- shard worker {view.worker_index} --"
            assert "node" in rest  # the worker-side profile table follows
        finally:
            engine.shutdown()


class TestAnswerStatsShape:
    def test_as_dict_keys_are_pinned(self):
        engine = engine_with_traffic()
        engine.evaluate("MATCH (p:Post) RETURN p")
        stats = engine.answer_stats().as_dict()
        assert list(stats) == [
            "queries",
            "answered",
            "exact",
            "residual",
            "root_hits",
            "subplan_hits",
            "fallbacks",
            "stale_declines",
        ]
        assert all(isinstance(value, int) for value in stats.values())
        assert stats["queries"] >= 1


class TestMemoryCounters:
    def test_view_and_engine_counters_are_nonnegative_ints(self):
        engine = engine_with_traffic()
        view = engine.views[0]
        for value in (
            view.memory_size(),
            view.memory_cells(),
            engine._incremental.memory_size(),
            engine._incremental.memory_cells(),
        ):
            assert isinstance(value, int)
            assert value >= 0
        assert view.memory_cells() >= view.memory_size()


class TestExplainLiveStats:
    def test_section_present_with_metrics_on(self):
        engine = engine_with_traffic(collect_metrics=True)
        text = engine.explain("MATCH (p:Post) RETURN p")
        assert "== Live stats ==" in text
        assert "repro_batches_total = " in text
        assert "repro_views_live = 1" in text

    def test_section_absent_with_metrics_off(self):
        engine = engine_with_traffic()
        assert "== Live stats ==" not in engine.explain(
            "MATCH (p:Post) RETURN p"
        )


class TestCliObservability:
    SETUP = (
        ":register MATCH (p:Post) RETURN p.lang AS lang\n"
        "CREATE (:Post {lang: 'en'});\n"
    )

    def test_metrics_requires_the_flag(self):
        status, output = run_shell(self.SETUP + ":metrics\n")
        assert status == 0
        assert "metrics collection is off" in output

    def test_metrics_prometheus_and_json(self):
        status, output = run_shell(
            self.SETUP + ":metrics\n", "--metrics"
        )
        assert status == 0
        assert "# TYPE repro_events_total counter" in output
        assert "repro_views_live 1" in output
        status, output = run_shell(
            self.SETUP + ":metrics json\n", "--metrics"
        )
        assert status == 0
        payload = json.loads(output[output.index("{"):])
        assert payload["repro_events_total"]["value"] >= 1

    def test_metrics_table_shows_quantiles(self):
        status, output = run_shell(
            self.SETUP + ":metrics table\n", "--metrics"
        )
        assert status == 0
        assert "repro_events_total" in output
        latency_line = next(
            line
            for line in output.splitlines()
            if line.startswith("repro_event_dispatch_seconds")
        )
        assert "p50" in latency_line and "p99" in latency_line
        status, output = run_shell(self.SETUP + ":metrics bogus\n", "--metrics")
        assert status == 0
        assert "usage: :metrics [json|table]" in output

    def test_trace_toggle_and_render(self):
        script = (
            ":trace\n"
            ":trace on\n" + self.SETUP + ":trace\n:trace off\n"
        )
        status, output = run_shell(script)
        assert status == 0
        assert "tracing is off; no trace recorded yet" in output
        assert "batch tracing on" in output
        assert "emit " in output  # the rendered span tree
        assert "batch tracing off" in output

    def test_costs_lists_views_and_total(self):
        status, output = run_shell(self.SETUP + ":costs\n")
        assert status == 0
        assert "maintenance cost per view" in output
        assert "[0]" in output and "MATCH (p:Post)" in output
        assert "total" in output

    def test_costs_without_views(self):
        status, output = run_shell(":costs\n")
        assert status == 0
        assert "no views registered" in output

    def test_shards_reports_in_process_engine(self):
        status, output = run_shell(self.SETUP + ":shards\n")
        assert status == 0
        assert "0 workers, 1 views" in output
        assert "in-process engine:" in output

    def test_help_lists_the_new_metas(self):
        status, output = run_shell(":help\n")
        assert status == 0
        for meta in (":metrics", ":trace", ":costs"):
            assert meta in output
