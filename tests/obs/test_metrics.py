"""Metrics registry mechanics: instruments, snapshots, merging, export."""

import json

import pytest

from repro.obs.export import render_json, render_prometheus, render_table
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    EngineMetrics,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("c", "help")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.as_dict() == {"type": "counter", "help": "help", "value": 5}

    def test_gauge_sets(self):
        gauge = Gauge("g", "help")
        gauge.set(7)
        gauge.set(3)
        assert gauge.as_dict()["value"] == 3

    def test_histogram_buckets_are_cumulative_in_snapshot(self):
        histogram = Histogram("h", "help", bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        data = histogram.as_dict()
        assert data["buckets"] == [[0.1, 1], [1.0, 3], [10.0, 4]]
        assert data["count"] == 5
        assert data["sum"] == pytest.approx(56.05)

    def test_histogram_default_bounds_span_sub_ms_to_seconds(self):
        assert LATENCY_BUCKETS[0] < 0.001 < LATENCY_BUCKETS[-1]
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)

    def test_histogram_quantiles_interpolate_within_buckets(self):
        histogram = Histogram("h", "help", bounds=(0.1, 1.0, 10.0))
        for value in (0.5,) * 10:  # all ten land in the (0.1, 1.0] bucket
            histogram.observe(value)
        # rank interpolates linearly across the bucket's (0.1, 1.0] span
        assert histogram.quantile(0.5) == pytest.approx(0.55)
        assert histogram.quantile(0.99) == pytest.approx(0.991)
        assert 0.1 < histogram.quantile(0.01) <= 1.0

    def test_histogram_quantile_edge_cases(self):
        histogram = Histogram("h", "help", bounds=(0.1, 1.0))
        assert histogram.quantile(0.5) == 0.0  # empty
        histogram.observe(50.0)  # lands in +Inf
        assert histogram.quantile(0.99) == 1.0  # clamped to top finite bound
        low = Histogram("l", "help", bounds=(0.1, 1.0))
        low.observe(0.05)
        assert 0.0 < low.quantile(0.5) <= 0.1


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "help")
        assert registry.counter("c", "help") is first
        assert registry.histogram("h", "x") is registry.histogram("h", "x")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("c", "help")
        with pytest.raises(TypeError):
            registry.gauge("c", "help")
        with pytest.raises(TypeError):
            registry.histogram("c", "help")

    def test_snapshot_runs_collectors_and_sorts(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("z_last", "")
        registry.counter("a_first", "").inc()
        registry.add_collector(lambda: gauge.set(42))
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a_first", "z_last"]
        assert snapshot["z_last"]["value"] == 42

    def test_engine_metrics_builds_over_one_registry(self):
        bundle = EngineMetrics()
        snapshot = bundle.registry.snapshot()
        assert "repro_batches_total" in snapshot
        assert "repro_batch_seconds" in snapshot
        assert snapshot["repro_batch_seconds"]["type"] == "histogram"


class TestMergeSnapshots:
    def test_sums_counters_and_buckets(self):
        def make(observations):
            registry = MetricsRegistry()
            registry.counter("c", "help").inc(2)
            histogram = registry.histogram("h", "help", bounds=(1.0, 10.0))
            for value in observations:
                histogram.observe(value)
            return registry.snapshot()

        merged = merge_snapshots([make([0.5, 5.0]), make([0.5])])
        assert merged["c"]["value"] == 4
        assert merged["h"]["count"] == 3
        assert merged["h"]["buckets"] == [[1.0, 2], [10.0, 3]]

    def test_merge_does_not_mutate_inputs(self):
        registry = MetricsRegistry()
        registry.histogram("h", "", bounds=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        before = json.loads(json.dumps(snapshot))
        merge_snapshots([snapshot, snapshot])
        assert snapshot == before

    def test_disjoint_metrics_pass_through(self):
        left = MetricsRegistry()
        left.counter("only_left", "").inc()
        right = MetricsRegistry()
        right.counter("only_right", "").inc(2)
        merged = merge_snapshots([left.snapshot(), right.snapshot()])
        assert merged["only_left"]["value"] == 1
        assert merged["only_right"]["value"] == 2


class TestExport:
    def snapshot(self):
        registry = MetricsRegistry()
        registry.counter("repro_c", "a counter").inc(3)
        registry.gauge("repro_g", "a gauge").set(7)
        registry.histogram("repro_h", "a histogram", bounds=(0.5,)).observe(0.1)
        return registry.snapshot()

    def test_prometheus_text_format(self):
        text = render_prometheus(self.snapshot())
        lines = text.splitlines()
        assert "# HELP repro_c a counter" in lines
        assert "# TYPE repro_c counter" in lines
        assert "repro_c 3" in lines
        assert "repro_g 7" in lines
        assert 'repro_h_bucket{le="0.5"} 1' in lines
        assert 'repro_h_bucket{le="+Inf"} 1' in lines
        assert "repro_h_count 1" in lines
        assert text.endswith("\n")

    def test_json_round_trips(self):
        snapshot = self.snapshot()
        assert json.loads(render_json(snapshot)) == snapshot

    def test_table_lists_quantiles_for_histograms(self):
        text = render_table(self.snapshot())
        lines = text.splitlines()
        counter_line = next(l for l in lines if l.startswith("repro_c"))
        assert "counter" in counter_line and counter_line.endswith("3")
        histogram_line = next(l for l in lines if l.startswith("repro_h"))
        assert "count 1" in histogram_line
        assert "p50" in histogram_line and "p99" in histogram_line
        assert text.endswith("\n")
