"""Differential oracle: observability must not change what views compute.

``collect_metrics=True`` and ``trace_batches=True`` add timing and span
recording around the maintenance pipeline; the pinned contract is that
they are *pure observers*.  The mirror class here drives identical random
streams through an instrumented engine and a flags-off baseline (the
exact prior-PR path) and requires identical per-view multisets and
``on_change`` logs throughout — across per-event and batched propagation,
rollback transactions, the columnar ablation, mid-stream register/detach,
and the sharded tier.
"""

import random

import pytest

from repro import PropertyGraph, QueryEngine
from repro.errors import GraphError

from ..rete.test_columnar import oracle
from ..rete.test_sharing import _Abort, _random_op

QUERIES = (
    "MATCH (p:Post) RETURN p.lang AS lang",
    "MATCH (p:Post) WHERE p.lang = 'en' RETURN p",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
    "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
    "MATCH (p:Post)-[:REPLY*1..2]->(c:Comm) RETURN p, c",
)

#: instrumentation variants the oracle must hold for, individually and
#: combined
OBS_FLAGS = (
    {"collect_metrics": True},
    {"trace_batches": True},
    {"collect_metrics": True, "trace_batches": True},
)

OBS_IDS = ["metrics", "trace", "metrics+trace"]


class ObsMirrorPair:
    """An instrumented engine and its flags-off baseline, fed identically."""

    def __init__(self, obs=None, workers=0, **flags):
        obs = obs or {"collect_metrics": True, "trace_batches": True}
        self.graphs = (PropertyGraph(), PropertyGraph())
        self.engines = (
            QueryEngine(self.graphs[0], workers=workers, **obs, **flags),
            QueryEngine(self.graphs[1], workers=workers, **flags),
        )
        self.registered: list[str] = []
        self.views: list[tuple] = []
        self.logs: list[tuple] = []

    def register(self, query: str) -> None:
        pair, logs = [], []
        for engine in self.engines:
            view = engine.register(query)
            log: list = []
            view.on_change(log.append)
            pair.append(view)
            logs.append(log)
        self.registered.append(query)
        self.views.append(tuple(pair))
        self.logs.append(tuple(logs))

    def detach(self, index: int) -> None:
        for view in self.views.pop(index):
            view.detach()
        self.registered.pop(index)
        self.logs.pop(index)

    def apply(self, op) -> None:
        for graph in self.graphs:
            op(graph)

    def assert_consistent(self, use_oracle: bool = False) -> None:
        for query, (instrumented, baseline) in zip(self.registered, self.views):
            assert instrumented.multiset() == baseline.multiset(), query
            if use_oracle:
                assert instrumented.multiset() == oracle(
                    self.graphs[0], query
                ), query
        for query, (instrumented_log, baseline_log) in zip(
            self.registered, self.logs
        ):
            assert instrumented_log == baseline_log, query

    def shutdown(self) -> None:
        for engine in self.engines:
            engine.shutdown()


def _drive(pair, rng, operations=40, rollback_chance=0.1, oracle_every=10):
    for step in range(operations):
        vertices = list(pair.graphs[0].vertices())
        edges = list(pair.graphs[0].edges())
        if rng.random() < rollback_chance:
            ops = [
                _random_op(rng, vertices, edges)
                for _ in range(rng.randint(1, 4))
            ]

            def aborted(graph, ops=ops):
                try:
                    with graph.transaction():
                        for op in ops:
                            op(graph)
                        raise _Abort()
                except (_Abort, GraphError):
                    pass

            pair.apply(aborted)
        else:
            pair.apply(_random_op(rng, vertices, edges))
        pair.assert_consistent(use_oracle=step % oracle_every == 0)
    pair.assert_consistent(use_oracle=True)


class TestObservabilityIsPure:
    @pytest.mark.parametrize("obs", OBS_FLAGS, ids=OBS_IDS)
    def test_per_event_stream_matches_baseline(self, obs):
        pair = ObsMirrorPair(obs=obs)
        for query in QUERIES:
            pair.register(query)
        _drive(pair, random.Random(2100))

    @pytest.mark.parametrize("obs", OBS_FLAGS, ids=OBS_IDS)
    def test_batched_transactions_match_baseline(self, obs):
        rng = random.Random(2200)
        pair = ObsMirrorPair(obs=obs, batch_transactions=True)
        for query in QUERIES:
            pair.register(query)
        for _ in range(20):
            vertices = list(pair.graphs[0].vertices())
            edges = list(pair.graphs[0].edges())
            ops = [
                _random_op(rng, vertices, edges)
                for _ in range(rng.randint(1, 5))
            ]
            abort = rng.random() < 0.3

            def run(graph, ops=ops, abort=abort):
                try:
                    with graph.transaction():
                        for op in ops:
                            op(graph)
                        if abort:
                            raise _Abort()
                except (_Abort, GraphError):
                    pass

            pair.apply(run)
            pair.assert_consistent(use_oracle=True)

    @pytest.mark.parametrize(
        "flags",
        [
            {"columnar_deltas": False},
            {"route_events": False},
            {"share_subplans": False},
            {"batch_transactions": True, "columnar_deltas": False},
        ],
        ids=lambda flags: ",".join(f"{k}={v}" for k, v in flags.items()),
    )
    def test_flag_matrix_matches_baseline(self, flags):
        """Instrumentation composes with every existing ablation flag."""
        pair = ObsMirrorPair(**flags)
        for query in QUERIES:
            pair.register(query)
        _drive(pair, random.Random(2300), operations=25)

    def test_mid_stream_register_and_detach(self):
        rng = random.Random(2400)
        pair = ObsMirrorPair()
        pair.register(QUERIES[2])
        for step in range(40):
            vertices = list(pair.graphs[0].vertices())
            edges = list(pair.graphs[0].edges())
            roll = rng.random()
            if roll < 0.15:
                pair.register(QUERIES[rng.randrange(len(QUERIES))])
            elif roll < 0.25 and len(pair.views) > 1:
                pair.detach(rng.randrange(len(pair.views)))
            else:
                pair.apply(_random_op(rng, vertices, edges))
            pair.assert_consistent(use_oracle=step % 10 == 0)
        pair.assert_consistent(use_oracle=True)

    def test_sharded_tier_matches_baseline(self):
        rng = random.Random(2500)
        pair = ObsMirrorPair(workers=2, batch_transactions=True)
        try:
            for query in QUERIES[:4]:
                pair.register(query)
            for _ in range(12):
                vertices = list(pair.graphs[0].vertices())
                edges = list(pair.graphs[0].edges())
                ops = [
                    _random_op(rng, vertices, edges)
                    for _ in range(rng.randint(1, 4))
                ]
                abort = rng.random() < 0.25

                def run(graph, ops=ops, abort=abort):
                    try:
                        with graph.transaction():
                            for op in ops:
                                op(graph)
                            if abort:
                                raise _Abort()
                    except (_Abort, GraphError):
                        pass

                pair.apply(run)
                pair.assert_consistent(use_oracle=True)
            # the instrumented coordinator actually recorded something
            snapshot = pair.engines[0].metrics_snapshot()
            assert snapshot["repro_batches_total"]["value"] > 0
        finally:
            pair.shutdown()

    def test_instrumented_engine_actually_measures(self):
        """Guard against the oracle passing because metrics never engage."""
        pair = ObsMirrorPair()
        pair.register(QUERIES[0])
        pair.apply(
            lambda g: g.add_vertex(labels=["Post"], properties={"lang": "en"})
        )
        snapshot = pair.engines[0].metrics_snapshot()
        assert snapshot["repro_events_total"]["value"] >= 1
        assert pair.engines[0].last_trace is not None
        assert pair.engines[1].metrics_snapshot() is None
        assert pair.engines[1].last_trace is None
