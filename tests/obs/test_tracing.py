"""Span trees: tracer mechanics and the engine's install discipline."""

import pytest

from repro import PropertyGraph, QueryEngine
from repro.obs import tracing
from repro.obs.tracing import BatchTracer, Span
from repro.rete.engine import IncrementalEngine


def small_graph():
    graph = PropertyGraph()
    post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
    comment = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    graph.add_edge(post, comment, "REPLY")
    return graph


class TestSpan:
    def tree(self):
        child = Span("inner", seconds=0.25, rows=3)
        return Span("outer", "d", seconds=1.0, children=[child]), child

    def test_self_seconds_excludes_children(self):
        root, child = self.tree()
        assert root.self_seconds == pytest.approx(0.75)
        assert child.self_seconds == pytest.approx(0.25)

    def test_as_dict_nests(self):
        root, _ = self.tree()
        data = root.as_dict()
        assert data["name"] == "outer"
        assert data["self_seconds"] == pytest.approx(0.75)
        assert data["children"][0]["name"] == "inner"
        assert data["children"][0]["children"] == []

    def test_render_indents_one_line_per_span(self):
        root, _ = self.tree()
        lines = root.render().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("outer d  rows=0 total=1000.000ms")
        assert lines[1].startswith("  inner  rows=3 total=250.000ms")

    def test_walk_is_preorder(self):
        root, child = self.tree()
        assert [span.name for span in root.walk()] == ["outer", "inner"]
        assert list(child.walk()) == [child]


class TestBatchTracer:
    def test_nesting_follows_enter_exit(self):
        tracer = BatchTracer("root")
        tracer.enter("a")
        tracer.enter("a.1", rows=2)
        tracer.exit()
        tracer.exit()
        tracer.enter("b")
        tracer.exit()
        root = tracer.finish()
        assert [span.name for span in root.children] == ["a", "b"]
        assert root.children[0].children[0].rows == 2
        assert root.seconds >= root.children[0].seconds >= 0

    def test_finish_closes_abandoned_spans(self):
        tracer = BatchTracer("root")
        tracer.enter("a")
        tracer.enter("a.1")  # never exited: exception mid-propagation
        root = tracer.finish()
        assert root.children[0].children[0].seconds >= 0
        assert root.seconds >= root.children[0].seconds


class TestEngineIntegration:
    def test_per_event_trace_records_the_propagation_path(self):
        graph = small_graph()
        engine = IncrementalEngine(graph, trace_batches=True)
        engine.register("MATCH (p:Post) RETURN p.lang AS lang")
        assert engine.last_trace is None or engine.last_trace.name in (
            "event",
            "batch",
        )
        graph.add_vertex(labels=["Post"], properties={"lang": "de"})
        trace = engine.last_trace
        assert trace is not None
        assert trace.name == "event"
        names = [span.name for span in trace.walk()]
        assert any(name.startswith("emit ") for name in names)
        assert any(name.startswith("apply ") for name in names)
        assert tracing.ACTIVE is None

    def test_batch_trace_has_coalesce_dispatch_merge_phases(self):
        graph = small_graph()
        engine = IncrementalEngine(graph, trace_batches=True)
        engine.register("MATCH (p:Post) RETURN p.lang AS lang")
        with engine.batch():
            graph.add_vertex(labels=["Post"], properties={"lang": "de"})
            graph.add_vertex(labels=["Post"], properties={"lang": "hu"})
        trace = engine.last_trace
        assert trace.name == "batch"
        assert trace.detail == "raw_events=2"
        phases = [span.name for span in trace.children]
        assert phases[:2] == ["coalesce", "dispatch"]
        assert phases[-1] == "merge"
        dispatch = trace.children[1]
        assert any(
            span.name.startswith("emit ") for span in dispatch.walk()
        )
        assert tracing.ACTIVE is None

    def test_tracer_restored_when_a_callback_raises(self):
        graph = small_graph()
        engine = IncrementalEngine(graph, trace_batches=True)
        view = engine.register("MATCH (p:Post) RETURN p.lang AS lang")

        def boom(delta):
            raise RuntimeError("callback failure")

        view.on_change(boom)
        with pytest.raises(RuntimeError):
            graph.add_vertex(labels=["Post"], properties={"lang": "de"})
        assert tracing.ACTIVE is None
        assert engine.last_trace is not None  # the partial tree is kept

    def test_tracing_off_records_nothing(self):
        graph = small_graph()
        engine = IncrementalEngine(graph)
        engine.register("MATCH (p:Post) RETURN p.lang AS lang")
        graph.add_vertex(labels=["Post"], properties={"lang": "de"})
        assert engine.last_trace is None

    def test_runtime_toggle_via_api(self):
        graph = small_graph()
        engine = QueryEngine(graph)
        engine.register("MATCH (p:Post) RETURN p.lang AS lang")
        assert engine.tracing is False
        engine.execute("CREATE (:Post {lang: 'de'})")
        assert engine.last_trace is None
        engine.set_tracing(True)
        assert engine.tracing is True
        engine.execute("CREATE (:Post {lang: 'hu'})")
        first = engine.last_trace
        assert first is not None
        engine.set_tracing(False)
        engine.execute("CREATE (:Post {lang: 'fi'})")
        assert engine.last_trace is first  # no new tree recorded

    def test_trace_spans_carry_row_counts(self):
        graph = small_graph()
        engine = IncrementalEngine(graph, trace_batches=True)
        engine.register("MATCH (p:Post) RETURN p.lang AS lang")
        with engine.batch():
            for lang in ("de", "hu", "fi"):
                graph.add_vertex(labels=["Post"], properties={"lang": lang})
        emits = [
            span
            for span in engine.last_trace.walk()
            if span.name.startswith("emit ")
        ]
        assert emits and all(span.rows >= 1 for span in emits)
        assert engine.last_trace.children[0].rows == 3  # coalesce raw events
