"""Transaction-batched delta propagation (rete/batch.py + engine.batch()).

The contract under test: a batch propagates *one net delta per input node*,
fires each view's ``on_change`` exactly once per batch (never for a batch
that nets to nothing), and always leaves views identical to full
recomputation — the IVM property, batched.
"""

from __future__ import annotations

import pytest

from repro import PropertyGraph, QueryEngine
from repro.errors import TransactionError
from repro.rete.batch import BatchAccumulator
from repro.workloads import social

from ..conftest import PAPER_QUERY, assert_view_matches_oracle


def make_paper_graph():
    graph = PropertyGraph()
    post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
    comment2 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    comment3 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    graph.add_edge(post, comment2, "REPLY")
    graph.add_edge(comment2, comment3, "REPLY")
    return graph, post, comment2, comment3


# ---------------------------------------------------------------------------
# net-zero batches
# ---------------------------------------------------------------------------


def test_insert_then_delete_same_edge_nets_to_zero():
    graph, _, __, comment3 = make_paper_graph()
    engine = QueryEngine(graph)
    view = engine.register(PAPER_QUERY)
    before = view.multiset()
    deltas = []
    view.on_change(deltas.append)

    with engine.batch():
        comment4 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        edge = graph.add_edge(comment3, comment4, "REPLY")
        graph.remove_edge(edge)
        graph.remove_vertex(comment4)

    assert deltas == []  # a cancelled batch must not fire callbacks
    assert view.multiset() == before
    assert_view_matches_oracle(engine, view, PAPER_QUERY)


def test_property_round_trip_nets_to_zero():
    graph, _, comment2, __ = make_paper_graph()
    engine = QueryEngine(graph)
    view = engine.register(PAPER_QUERY)
    deltas = []
    view.on_change(deltas.append)

    with engine.batch():
        graph.set_vertex_property(comment2, "lang", "de")
        graph.set_vertex_property(comment2, "lang", "fr")
        graph.set_vertex_property(comment2, "lang", "en")

    assert deltas == []
    assert_view_matches_oracle(engine, view, PAPER_QUERY)


def test_label_round_trip_nets_to_zero():
    graph, _, comment2, __ = make_paper_graph()
    engine = QueryEngine(graph)
    view = engine.register(PAPER_QUERY)
    deltas = []
    view.on_change(deltas.append)

    with engine.batch():
        graph.remove_label(comment2, "Comm")
        graph.add_label(comment2, "Comm")

    assert deltas == []
    assert_view_matches_oracle(engine, view, PAPER_QUERY)


def test_accumulator_cancels_ephemeral_entities():
    graph = PropertyGraph()
    accumulator = BatchAccumulator(graph)
    graph.subscribe(accumulator.record)
    vertex = graph.add_vertex(labels=["Post"])
    other = graph.add_vertex(labels=["Comm"])
    edge = graph.add_edge(vertex, other, "REPLY")
    graph.remove_edge(edge)
    graph.remove_vertex(vertex)
    batch = accumulator.consolidate()
    assert batch.raw_events == 5
    assert batch.edge_events == ()  # edge add/remove cancelled
    # only the surviving vertex remains, as a net addition
    assert [event.vertex_id for event in batch.vertex_events] == [other]


# ---------------------------------------------------------------------------
# once-per-batch callbacks
# ---------------------------------------------------------------------------


def test_on_change_fires_exactly_once_per_batch():
    graph, _, __, comment3 = make_paper_graph()
    engine = QueryEngine(graph)
    view = engine.register(PAPER_QUERY)
    deltas = []
    view.on_change(deltas.append)

    with engine.batch():
        for _ in range(5):
            comment = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
            graph.add_edge(comment3, comment, "REPLY")
            comment3 = comment

    assert len(deltas) == 1
    assert len(deltas[0]) == 5  # the net output delta, all five new threads
    assert_view_matches_oracle(engine, view, PAPER_QUERY)


def test_nested_batches_flush_once_at_outermost_exit():
    graph, _, __, comment3 = make_paper_graph()
    engine = QueryEngine(graph)
    view = engine.register(PAPER_QUERY)
    deltas = []
    view.on_change(deltas.append)

    with engine.batch():
        comment4 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        with engine.batch():
            graph.add_edge(comment3, comment4, "REPLY")
        assert deltas == []  # inner exit must not flush

    assert len(deltas) == 1
    assert_view_matches_oracle(engine, view, PAPER_QUERY)


def test_batch_flushes_on_exception():
    graph, _, __, comment3 = make_paper_graph()
    engine = QueryEngine(graph)
    view = engine.register(PAPER_QUERY)

    with pytest.raises(RuntimeError):
        with engine.batch():
            comment4 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
            graph.add_edge(comment3, comment4, "REPLY")
            raise RuntimeError("boom")

    # the mutations happened (no transaction here), so the view caught up
    assert_view_matches_oracle(engine, view, PAPER_QUERY)


def test_unbalanced_end_batch_rejected():
    engine = QueryEngine(PropertyGraph())
    with pytest.raises(TransactionError):
        engine._incremental._end_batch()


# ---------------------------------------------------------------------------
# batched == per-event == oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("share_inputs", [True, False])
def test_batched_equals_per_event_on_churn_stream(share_inputs):
    net = social.generate_social(persons=6, posts_per_person=1, comments_per_post=3)
    graph = net.graph
    batched = QueryEngine(graph, share_inputs=share_inputs)
    per_event = QueryEngine(graph, share_inputs=share_inputs)

    queries = [PAPER_QUERY, social.QUERIES["popular_posts"]]
    batched_views = [batched.register(q) for q in queries]
    per_event_views = [per_event.register(q) for q in queries]

    stream = social.update_stream(net, operations=60, seed=11)
    done = False
    while not done:
        with batched.batch():  # batches of 8 operations
            for _ in range(8):
                if next(stream, None) is None:
                    done = True
                    break
        for query, bview, eview in zip(queries, batched_views, per_event_views):
            assert bview.multiset() == eview.multiset()
            assert_view_matches_oracle(batched, bview, query)


def test_endpoint_label_and_property_changes_in_batch():
    graph = PropertyGraph()
    engine = QueryEngine(graph)
    post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
    comm = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    graph.add_edge(post, comm, "REPLY")
    query = (
        "MATCH (p:Post)-[:REPLY]->(c:Comm) "
        "RETURN p.lang AS plang, c.lang AS clang"
    )
    view = engine.register(query)
    assert view.rows() == [("en", "en")]

    with engine.batch():
        graph.set_vertex_property(comm, "lang", "de")   # pushed-down column
        graph.remove_label(post, "Post")                # breaks the constraint
    assert view.rows() == []
    assert_view_matches_oracle(engine, view, query)

    with engine.batch():
        graph.add_label(post, "Post")                   # restores membership
        graph.set_vertex_property(post, "lang", "de")
    assert view.rows() == [("de", "de")]
    assert_view_matches_oracle(engine, view, query)


def test_vertex_removed_with_incident_edges_in_batch():
    graph, post, comment2, comment3 = make_paper_graph()
    engine = QueryEngine(graph)
    view = engine.register(PAPER_QUERY)

    with engine.batch():
        graph.set_vertex_property(comment2, "lang", "de")
        graph.remove_vertex(comment3, detach=True)

    assert_view_matches_oracle(engine, view, PAPER_QUERY)


def test_register_mid_batch_stays_consistent():
    graph, _, __, comment3 = make_paper_graph()
    engine = QueryEngine(graph)
    early = engine.register(PAPER_QUERY)

    with engine.batch():
        comment4 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        graph.add_edge(comment3, comment4, "REPLY")
        late = engine.register(PAPER_QUERY)  # flushes the pending window
        comment5 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        graph.add_edge(comment4, comment5, "REPLY")

    assert early.multiset() == late.multiset()
    assert_view_matches_oracle(engine, early, PAPER_QUERY)


# ---------------------------------------------------------------------------
# transaction integration
# ---------------------------------------------------------------------------


def test_transaction_commit_propagates_once():
    graph, _, __, comment3 = make_paper_graph()
    engine = QueryEngine(graph, batch_transactions=True)
    view = engine.register(PAPER_QUERY)
    deltas = []
    view.on_change(deltas.append)

    with graph.transaction():
        comment4 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        graph.add_edge(comment3, comment4, "REPLY")
        comment5 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        graph.add_edge(comment4, comment5, "REPLY")

    assert len(deltas) == 1
    assert_view_matches_oracle(engine, view, PAPER_QUERY)


def test_transaction_rollback_leaves_views_untouched():
    graph, _, __, comment3 = make_paper_graph()
    engine = QueryEngine(graph, batch_transactions=True)
    view = engine.register(PAPER_QUERY)
    before = view.multiset()
    deltas = []
    view.on_change(deltas.append)

    with pytest.raises(RuntimeError):
        with graph.transaction():
            comment4 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
            graph.add_edge(comment3, comment4, "REPLY")
            graph.set_vertex_property(comment3, "lang", "de")
            raise RuntimeError("doomed")

    assert deltas == []  # compensation nets the window to zero
    assert view.multiset() == before
    assert_view_matches_oracle(engine, view, PAPER_QUERY)


def test_write_queries_batched_under_batch_transactions():
    graph = PropertyGraph()
    engine = QueryEngine(graph, batch_transactions=True)
    view = engine.register("MATCH (p:Post) RETURN p.lang AS lang")
    deltas = []
    view.on_change(deltas.append)

    engine.execute("CREATE (:Post {lang:'en'}), (:Post {lang:'de'})")
    assert len(deltas) == 1
    assert sorted(view.rows()) == [("de",), ("en",)]

    engine.execute("MATCH (p:Post) DELETE p")
    assert len(deltas) == 2
    assert view.rows() == []


def test_engine_created_mid_transaction_survives_commit():
    """A transaction opened before the engine existed has no batch to close."""
    graph = PropertyGraph()
    with graph.transaction():
        engine = QueryEngine(graph, batch_transactions=True)
        view = engine.register("MATCH (p:Post) RETURN p.lang AS lang")
        graph.add_vertex(labels=["Post"], properties={"lang": "en"})
    # commit must not raise, and the per-event path kept the view fresh
    assert view.rows() == [("en",)]

    with graph.transaction():  # subsequent transactions batch normally
        graph.add_vertex(labels=["Post"], properties={"lang": "de"})
    assert sorted(view.rows()) == [("de",), ("en",)]


def test_raising_callback_does_not_strand_other_views():
    graph = PropertyGraph()
    engine = QueryEngine(graph)
    angry = engine.register("MATCH (p:Post) RETURN p.lang AS lang")
    calm = engine.register("MATCH (p:Post) RETURN p.lang AS lang")

    exploded = []

    def explode(delta):
        if not exploded:
            exploded.append(delta)
            raise RuntimeError("bad subscriber")

    angry.on_change(explode)
    deltas = []
    calm.on_change(deltas.append)

    with pytest.raises(RuntimeError):
        with engine.batch():
            graph.add_vertex(labels=["Post"], properties={"lang": "en"})
    assert len(deltas) == 1  # the calm view still got its batch callback

    # and it is fully out of batch mode: per-event callbacks keep firing
    graph.add_vertex(labels=["Post"], properties={"lang": "de"})
    assert len(deltas) == 2
    assert_view_matches_oracle(engine, calm, "MATCH (p:Post) RETURN p.lang AS lang")


def test_per_event_path_unchanged_without_opt_in():
    """batch_size=1 baseline: no batching, one callback per elementary change."""
    graph = PropertyGraph()
    engine = QueryEngine(graph)
    view = engine.register("MATCH (p:Post) RETURN p.lang AS lang")
    deltas = []
    view.on_change(deltas.append)
    graph.add_vertex(labels=["Post"], properties={"lang": "en"})
    graph.add_vertex(labels=["Post"], properties={"lang": "de"})
    assert len(deltas) == 2
