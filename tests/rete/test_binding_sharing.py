"""Cross-binding sharing: one parameterised query, many bindings.

The canonical "millions of users" workload registers the *same*
parameterised view once per user, differing only in the binding.  With
``share_across_bindings=True`` the engine lifts the parameterised σ above
its binding-free core and cuts it over to one value-indexed
:class:`~repro.rete.nodes.unary.BindingIndexedSelectionNode` with one
output partition per live binding; ``share_across_bindings=False`` keeps
the exact-binding cache keys (and pushed-down plans) as the ablation
baseline.  The differential classes drive identical streams through both
modes and require identical per-view contents and change logs throughout —
random streams, rollback transactions, batched mode, and mid-stream
register/detach across ≥3 distinct bindings.
"""

import logging
import random

import pytest

from repro import PropertyGraph, QueryEngine
from repro.errors import GraphError
from repro.rete.engine import IncrementalEngine
from repro.rete.sharing import SharedSubplanLayer

from .test_sharing import _Abort, _random_op

#: parameterised shapes: equality (value-indexed), range (scan path),
#: equality under an extra binding-free σ, and a σ feeding an aggregate
PARAM_QUERIES = (
    "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.lang = $lang RETURN a, b",
    "MATCH (p:Post) WHERE p.lang = $lang RETURN p",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang AND p.lang = $lang "
    "RETURN p, c",
    "MATCH (p:Post) WHERE p.lang = $lang RETURN p.lang AS lang, count(*) AS n",
)

BINDINGS = ("en", "de", "hu", 1, None)


def param_oracle(engine: IncrementalEngine, query: str, parameters: dict):
    from repro.compiler.pipeline import compile_query
    from repro.eval.interpreter import Interpreter

    return (
        Interpreter(engine.graph, parameters)
        .run(compile_query(query).plan)
        .multiset()
    )


class BindingMirrorPair:
    """A cross-binding engine and its exact-binding baseline, fed identically."""

    def __init__(self, batch_transactions: bool = False):
        self.graphs = (PropertyGraph(), PropertyGraph())
        self.engines = (
            QueryEngine(
                self.graphs[0],
                share_across_bindings=True,
                batch_transactions=batch_transactions,
            ),
            QueryEngine(
                self.graphs[1],
                share_across_bindings=False,
                batch_transactions=batch_transactions,
            ),
        )
        self.registered: list[tuple[str, dict]] = []
        self.views: list[tuple] = []
        self.logs: list[tuple] = []

    def register(self, query: str, parameters: dict) -> None:
        pair, logs = [], []
        for engine in self.engines:
            view = engine.register(query, parameters=parameters)
            log: list = []
            view.on_change(log.append)
            pair.append(view)
            logs.append(log)
        self.registered.append((query, parameters))
        self.views.append(tuple(pair))
        self.logs.append(tuple(logs))

    def detach(self, index: int) -> None:
        for view in self.views.pop(index):
            view.detach()
        self.registered.pop(index)
        self.logs.pop(index)

    def apply(self, op) -> None:
        for graph in self.graphs:
            op(graph)

    def assert_consistent(self, oracle: bool = False) -> None:
        for (query, parameters), (shared, baseline) in zip(
            self.registered, self.views
        ):
            assert shared.multiset() == baseline.multiset(), (query, parameters)
            if oracle:
                assert shared.multiset() == param_oracle(
                    self.engines[0]._incremental, query, parameters
                ), (query, parameters)
        for (query, parameters), (shared_log, baseline_log) in zip(
            self.registered, self.logs
        ):
            assert shared_log == baseline_log, (query, parameters)


def register_all(pair: BindingMirrorPair, bindings=BINDINGS) -> None:
    for query in PARAM_QUERIES:
        for value in bindings:
            pair.register(query, {"lang": value})


class TestBindingDifferential:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_stream_matches_exact_binding_baseline(self, seed):
        pair = BindingMirrorPair()
        register_all(pair)
        rng = random.Random(500 + seed)
        for step in range(60):
            vertices = list(pair.graphs[0].vertices())
            edges = list(pair.graphs[0].edges())
            if rng.random() < 0.08:
                ops = [
                    _random_op(rng, vertices, edges)
                    for _ in range(rng.randint(1, 4))
                ]

                def aborted(graph, ops=ops):
                    try:
                        with graph.transaction():
                            for op in ops:
                                op(graph)
                            raise _Abort()
                    except (_Abort, GraphError):
                        pass

                pair.apply(aborted)
            else:
                pair.apply(_random_op(rng, vertices, edges))
            pair.assert_consistent(oracle=step % 20 == 0)
        pair.assert_consistent(oracle=True)

    @pytest.mark.parametrize("seed", range(2))
    def test_batched_transactions_match_baseline(self, seed):
        rng = random.Random(600 + seed)
        pair = BindingMirrorPair(batch_transactions=True)
        register_all(pair)
        for _ in range(20):
            vertices = list(pair.graphs[0].vertices())
            edges = list(pair.graphs[0].edges())
            ops = [
                _random_op(rng, vertices, edges)
                for _ in range(rng.randint(1, 5))
            ]
            abort = rng.random() < 0.3

            def run(graph, ops=ops, abort=abort):
                try:
                    with graph.transaction():
                        for op in ops:
                            op(graph)
                        if abort:
                            raise _Abort()
                except (_Abort, GraphError):
                    pass

            pair.apply(run)
            pair.assert_consistent(oracle=True)

    @pytest.mark.parametrize("seed", range(2))
    def test_mid_stream_register_and_detach_across_bindings(self, seed):
        """New bindings joining a live node (partition replay) stay exact."""
        rng = random.Random(700 + seed)
        pair = BindingMirrorPair()
        for value in BINDINGS[:2]:
            pair.register(PARAM_QUERIES[0], {"lang": value})
        pool = [
            (query, {"lang": value})
            for query in PARAM_QUERIES
            for value in BINDINGS
        ]
        for step in range(50):
            vertices = list(pair.graphs[0].vertices())
            edges = list(pair.graphs[0].edges())
            roll = rng.random()
            if roll < 0.15:
                query, parameters = pool[rng.randrange(len(pool))]
                pair.register(query, parameters)
            elif roll < 0.25 and len(pair.views) > 1:
                pair.detach(rng.randrange(len(pair.views)))
            else:
                pair.apply(_random_op(rng, vertices, edges))
            pair.assert_consistent(oracle=step % 10 == 0)
        pair.assert_consistent(oracle=True)

    def test_mid_batch_register_of_new_binding_matches_baseline(self):
        rng = random.Random(23)
        pair = BindingMirrorPair()
        for value in BINDINGS[:2]:
            pair.register(PARAM_QUERIES[0], {"lang": value})
        for graph in pair.graphs:
            a = graph.add_vertex(labels=["Person"], properties={"lang": "en"})
            b = graph.add_vertex(labels=["Person"], properties={"lang": "de"})
            graph.add_edge(a, b, "KNOWS")
        scopes = [engine.batch() for engine in pair.engines]
        for scope in scopes:
            scope.__enter__()
        try:
            for _ in range(8):
                vertices = list(pair.graphs[0].vertices())
                edges = list(pair.graphs[0].edges())
                pair.apply(_random_op(rng, vertices, edges))
            for value in BINDINGS[2:]:
                pair.register(PARAM_QUERIES[0], {"lang": value})
            for _ in range(8):
                vertices = list(pair.graphs[0].vertices())
                edges = list(pair.graphs[0].edges())
                pair.apply(_random_op(rng, vertices, edges))
        finally:
            for scope in scopes:
                scope.__exit__(None, None, None)
        pair.assert_consistent(oracle=True)


class TestBindingMechanics:
    def graph_with_people(self):
        graph = PropertyGraph()
        people = []
        for lang in ("en", "de", "hu", "en"):
            people.append(
                graph.add_vertex(labels=["Person"], properties={"lang": lang})
            )
        graph.add_edge(people[0], people[1], "KNOWS")
        graph.add_edge(people[1], people[2], "KNOWS")
        graph.add_edge(people[3], people[0], "KNOWS")
        return graph, people

    def test_differing_bindings_share_one_node_and_core(self):
        graph, _ = self.graph_with_people()
        engine = IncrementalEngine(graph)
        layer = engine.input_layer
        for value in ("en", "de", "hu"):
            engine.register(PARAM_QUERIES[0], parameters={"lang": value})
        assert layer.binding_node_count == 1
        assert layer.binding_partition_count == 3
        # the ⋈(©Person, ⇑KNOWS) core was built exactly once
        join_entries = [
            entry
            for entry in layer._subplans.values()
            if type(entry.node).__name__ == "JoinNode"
        ]
        assert len(join_entries) == 1

    def test_same_binding_twins_share_the_partition(self):
        graph, _ = self.graph_with_people()
        engine = IncrementalEngine(graph)
        layer = engine.input_layer
        first = engine.register(PARAM_QUERIES[0], parameters={"lang": "en"})
        hits_before = layer.stats.subplan_hits
        twin = engine.register(PARAM_QUERIES[0], parameters={"lang": "en"})
        assert layer.stats.subplan_hits > hits_before
        assert layer.binding_partition_count == 1
        assert twin.multiset() == first.multiset()

    def test_differently_named_parameters_share_across_bindings(self):
        """$lang vs $l: the generalised fingerprint ignores the name."""
        graph, _ = self.graph_with_people()
        engine = IncrementalEngine(graph)
        layer = engine.input_layer
        by_lang = engine.register(
            "MATCH (p:Person) WHERE p.lang = $lang RETURN p",
            parameters={"lang": "en"},
        )
        by_l = engine.register(
            "MATCH (x:Person) WHERE x.lang = $l RETURN x",
            parameters={"l": "de"},
        )
        assert layer.binding_node_count == 1
        assert layer.binding_partition_count == 2
        assert by_lang.multiset() == param_oracle(
            engine, "MATCH (p:Person) WHERE p.lang = $lang RETURN p", {"lang": "en"}
        )
        assert by_l.multiset() == param_oracle(
            engine, "MATCH (p:Person) WHERE p.lang = $l RETURN p", {"l": "de"}
        )

    def test_equal_but_differently_typed_bindings_stay_partitioned(self):
        """1 == True == 1.0 in Python; partitions must not conflate them."""
        graph = PropertyGraph()
        for value in (1, True, 1.0, "1"):
            graph.add_vertex(labels=["Post"], properties={"lang": value})
        engine = IncrementalEngine(graph)
        query = "MATCH (p:Post) WHERE p.lang = $lang RETURN p.lang AS v"
        views = {
            repr(value): engine.register(query, parameters={"lang": value})
            for value in (1, True, 1.0, "1")
        }
        assert engine.input_layer.binding_partition_count == 4
        for value in (1, True, 1.0, "1"):
            rows = views[repr(value)].rows()
            assert rows == [(value,)] or (
                # Cypher numeric equality: 1 and 1.0 match each other's rows
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and sorted(rows, key=repr) == [(1,), (1.0,)]
            ), (value, rows)
        # exactness against recomputation is the real gate
        for value in (1, True, 1.0, "1"):
            assert views[repr(value)].multiset() == param_oracle(
                engine, query, {"lang": value}
            ), value

    def test_collection_and_null_bindings_use_the_scan_path(self):
        graph = PropertyGraph()
        graph.add_vertex(labels=["Post"], properties={"lang": [1, 2]})
        graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        graph.add_vertex(labels=["Post"])
        engine = IncrementalEngine(graph)
        query = "MATCH (p:Post) WHERE p.lang = $lang RETURN p"
        as_list = engine.register(query, parameters={"lang": [1, 2]})
        as_null = engine.register(query, parameters={"lang": None})
        as_str = engine.register(query, parameters={"lang": "en"})
        assert engine.input_layer.binding_node_count == 1
        assert len(as_list.rows()) == 1
        assert as_null.rows() == []  # lang = null is never true
        assert len(as_str.rows()) == 1
        graph.add_vertex(labels=["Post"], properties={"lang": [1, 2]})
        assert len(as_list.rows()) == 2
        for view, value in ((as_list, [1, 2]), (as_null, None), (as_str, "en")):
            assert view.multiset() == param_oracle(engine, query, {"lang": value})

    def test_range_predicates_share_without_a_value_index(self):
        graph = PropertyGraph()
        for score in (1, 2, 3, 4):
            graph.add_vertex(labels=["Post"], properties={"score": score})
        engine = IncrementalEngine(graph)
        query = "MATCH (p:Post) WHERE p.score > $min RETURN p"
        views = {
            value: engine.register(query, parameters={"min": value})
            for value in (1, 2, 3)
        }
        assert engine.input_layer.binding_node_count == 1
        assert engine.input_layer.binding_partition_count == 3
        assert {v: len(view.rows()) for v, view in views.items()} == {
            1: 3,
            2: 2,
            3: 1,
        }
        graph.add_vertex(labels=["Post"], properties={"score": 10})
        assert {v: len(view.rows()) for v, view in views.items()} == {
            1: 4,
            2: 3,
            3: 2,
        }

    def test_detach_of_one_binding_leaves_others_live(self):
        graph, people = self.graph_with_people()
        engine = IncrementalEngine(graph)
        views = {
            value: engine.register(PARAM_QUERIES[0], parameters={"lang": value})
            for value in ("en", "de", "hu")
        }
        views["de"].detach()
        late = graph.add_vertex(labels=["Person"], properties={"lang": "en"})
        graph.add_edge(late, people[1], "KNOWS")
        for value in ("en", "hu"):
            assert views[value].multiset() == param_oracle(
                engine, PARAM_QUERIES[0], {"lang": value}
            ), value

    def test_ablation_engine_keeps_exact_binding_keys(self):
        graph, _ = self.graph_with_people()
        engine = IncrementalEngine(graph, share_across_bindings=False)
        layer = engine.input_layer
        assert isinstance(layer, SharedSubplanLayer)
        for value in ("en", "de"):
            engine.register(PARAM_QUERIES[0], parameters={"lang": value})
        assert layer.binding_node_count == 0
        assert layer.binding_partition_count == 0

    def test_profile_marks_the_shared_partition(self):
        graph, _ = self.graph_with_people()
        engine = IncrementalEngine(graph)
        view = engine.register(PARAM_QUERIES[0], parameters={"lang": "en"})
        assert "BindingIndexedSelection (shared)" in view.profile()
        assert "SelectionPartition (shared)" in view.profile()


class TestBindingLifecycle:
    def test_all_bindings_detached_drops_node_and_core(self):
        graph = PropertyGraph()
        graph.add_vertex(labels=["Person"], properties={"lang": "en"})
        engine = IncrementalEngine(graph, detached_cache_size=0)
        layer = engine.input_layer
        views = [
            engine.register(PARAM_QUERIES[0], parameters={"lang": value})
            for value in ("en", "de", "hu")
        ]
        assert layer.binding_node_count == 1
        views[0].detach()
        views[1].detach()
        # surviving binding keeps node and core alive
        assert layer.binding_node_count == 1
        assert layer.binding_partition_count == 1
        views[2].detach()
        assert layer.binding_node_count == 0
        assert layer.binding_partition_count == 0
        assert layer.subplan_count == 0
        assert layer.node_count == 0

    def test_detached_binding_is_retained_and_revived(self):
        graph = PropertyGraph()
        graph.add_vertex(labels=["Person"], properties={"lang": "en"})
        engine = IncrementalEngine(graph, detached_cache_size=4)
        layer = engine.input_layer
        view = engine.register(PARAM_QUERIES[1], parameters={"lang": "en"})
        keeper = engine.register(PARAM_QUERIES[1], parameters={"lang": "de"})
        partitions_before = layer.stats.binding_partitions
        view.detach()
        assert layer.binding_partition_count == 2  # retained, still maintained
        graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        revived = engine.register(PARAM_QUERIES[1], parameters={"lang": "en"})
        # revival reused the retained partition instead of building anew
        assert layer.stats.binding_partitions == partitions_before
        assert layer.stats.detached_revived >= 1
        assert revived.multiset() == param_oracle(
            engine, PARAM_QUERIES[1], {"lang": "en"}
        )
        assert keeper.multiset() == param_oracle(
            engine, PARAM_QUERIES[1], {"lang": "de"}
        )

    @pytest.mark.parametrize("cache_size", [0, 2])
    def test_reregister_under_a_different_binding_is_not_served_stale(
        self, cache_size
    ):
        """register → detach → re-register under a *different* binding.

        The detached-LRU revival path must never hand the new binding the
        old binding's partition (or, in the ablation, the old resolved
        subplan) — partition keys carry the binding, so this pins that
        isolation for both modes and both cache sizes.
        """
        for share in (True, False):
            graph = PropertyGraph()
            for lang in ("en", "en", "de"):
                graph.add_vertex(labels=["Post"], properties={"lang": lang})
            engine = IncrementalEngine(
                graph,
                detached_cache_size=cache_size,
                share_across_bindings=share,
            )
            first = engine.register(PARAM_QUERIES[1], parameters={"lang": "en"})
            assert len(first.rows()) == 2
            first.detach()
            second = engine.register(PARAM_QUERIES[1], parameters={"lang": "de"})
            assert len(second.rows()) == 1, (share, cache_size)
            assert second.multiset() == param_oracle(
                engine, PARAM_QUERIES[1], {"lang": "de"}
            ), (share, cache_size)
            graph.add_vertex(labels=["Post"], properties={"lang": "de"})
            graph.add_vertex(labels=["Post"], properties={"lang": "en"})
            assert second.multiset() == param_oracle(
                engine, PARAM_QUERIES[1], {"lang": "de"}
            ), (share, cache_size)

    def test_random_register_detach_cycles_leave_no_garbage(self):
        rng = random.Random(101)
        graph = PropertyGraph()
        for lang in ("en", "de", "hu"):
            graph.add_vertex(labels=["Person"], properties={"lang": lang})
            graph.add_vertex(labels=["Post"], properties={"lang": lang})
        engine = IncrementalEngine(graph, detached_cache_size=0)
        live = []
        pool = [
            (query, {"lang": value})
            for query in PARAM_QUERIES
            for value in BINDINGS[:4]
        ]
        for _ in range(50):
            if live and rng.random() < 0.45:
                live.pop(rng.randrange(len(live))).detach()
            else:
                query, parameters = pool[rng.randrange(len(pool))]
                live.append(engine.register(query, parameters=parameters))
        for view in live:
            view.detach()
        layer = engine.input_layer
        assert layer.binding_node_count == 0
        assert layer.binding_partition_count == 0
        assert layer.subplan_count == 0
        assert layer.node_count == 0


class TestSharingLayerRegressions:
    """The PR's satellite bugfixes, pinned."""

    def test_double_release_clamps_at_zero(self, caplog):
        graph = PropertyGraph()
        graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        engine = IncrementalEngine(graph, detached_cache_size=0)
        layer = engine.input_layer
        view = engine.register("MATCH (p:Post) RETURN p")
        keeper = engine.register("MATCH (p:Post) RETURN p")
        key = next(iter(layer._subplans))
        entry = layer._subplans[key]
        assert entry.refcount == 2  # one acquire per view
        layer.release(key)
        layer.release(key)
        with caplog.at_level(logging.WARNING, logger="repro.rete.sharing"):
            layer.release(key)  # the double release (detach raced a prune)
        assert entry.refcount == 0  # clamped, never negative
        assert layer.stats.release_underflows == 1
        assert any(
            "without matching acquire" in message for message in caplog.messages
        )
        # liveness is intact: a fresh acquire still protects the subplan
        layer.acquire(key)
        layer.prune()
        assert key in layer._subplans
        layer.release(key)
        view.detach()
        keeper.detach()
        assert layer.subplan_count == 0

    def test_probes_do_not_count_revivals(self):
        graph = PropertyGraph()
        graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        engine = IncrementalEngine(graph, detached_cache_size=4)
        layer = engine.input_layer
        view = engine.register("MATCH (p:Post) RETURN p, p.lang")
        view.detach()
        assert layer.detached_count > 0
        assert layer.stats.detached_revived == 0
        key = next(iter(layer._detached_lru))
        # EXPLAIN/matcher-style probes: neither peek nor bare lookup revive
        layer.subplan_peek(key)
        layer.subplan_lookup(key)
        layer.subplan_lookup(key)
        assert layer.stats.detached_revived == 0
        # an actual re-registration acquires — exactly one revival
        engine.register("MATCH (p:Post) RETURN p, p.lang")
        assert layer.stats.detached_revived == 1
