"""Columnar delta batches: differential oracle against the row path.

``columnar_deltas=True`` switches the input/translation layer to emit
:class:`~repro.rete.deltas.ColumnDelta` batches, pushes constant equality
selections into value-level router buckets and input-node filters, and
widens the binding tier's discriminant to composite value tuples.  All of
that must be *invisible*: the mirror classes here drive identical random
streams through a columnar engine and its ``columnar_deltas=False``
baseline (the exact PR 1–5 row path) and require identical per-view
contents and change logs throughout — across every existing engine flag
(``batch_transactions``, ``route_events``, ``share_subplans``,
``share_across_bindings``), rollback transactions, batched windows, and
mid-stream register/detach.  Mechanics classes pin the representation
itself (lazy transposition, unconsolidated occurrence lists), the
zero-count index invariant, value-level routing, composite binding
probes, and the profile columns.
"""

import random

import pytest

from repro import PropertyGraph, QueryEngine
from repro.errors import GraphError
from repro.rete.deltas import (
    ColumnDelta,
    Delta,
    as_row_delta,
    index_insert,
    index_update,
)
from repro.rete.engine import IncrementalEngine

from .test_sharing import _Abort, _random_op

#: flows through σ-with-constant, ⋈, δ, γ, π and ⋈* — every boundary the
#: columnar representation crosses (raw consumption or row materialisation)
QUERIES = (
    "MATCH (p:Post) RETURN p.lang AS lang",
    "MATCH (p:Post) WHERE p.lang = 'en' RETURN p",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
    "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN DISTINCT p",
    "MATCH (p:Post)-[:REPLY*1..2]->(c:Comm) RETURN p, c",
)

#: the binding tier: single discriminant, composite discriminant, and a
#: mixed predicate whose second conjunct stays in the residual σ
PARAM_QUERIES = (
    ("MATCH (p:Post) WHERE p.lang = $lang RETURN p", ("lang",)),
    (
        "MATCH (p:Post) WHERE p.lang = $lang AND p.score = $score RETURN p",
        ("lang", "score"),
    ),
    (
        "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.lang = $lang RETURN a, b",
        ("lang",),
    ),
)

LANGS = ("en", "de", "hu", 1, None)
SCORES = (0, 1, 2)


def _columnar_op(rng: random.Random, vertices, edges):
    """The shared mutation pool, extended with a second property column."""
    if vertices and rng.random() < 0.2:
        vertex = rng.choice(vertices)
        value = rng.choice(SCORES)
        return lambda g: g.set_vertex_property(vertex, "score", value)
    return _random_op(rng, vertices, edges)


def oracle(graph: PropertyGraph, query: str, parameters=None):
    from repro.compiler.pipeline import compile_query
    from repro.eval.interpreter import Interpreter

    return Interpreter(graph, parameters).run(compile_query(query).plan).multiset()


class ColumnarMirrorPair:
    """A columnar engine and its row-path baseline, fed identically."""

    def __init__(self, **flags):
        self.graphs = (PropertyGraph(), PropertyGraph())
        self.engines = (
            QueryEngine(self.graphs[0], columnar_deltas=True, **flags),
            QueryEngine(self.graphs[1], columnar_deltas=False, **flags),
        )
        self.registered: list[tuple[str, dict | None]] = []
        self.views: list[tuple] = []
        self.logs: list[tuple] = []

    def register(self, query: str, parameters=None) -> None:
        pair, logs = [], []
        for engine in self.engines:
            view = engine.register(query, parameters=parameters)
            log: list = []
            view.on_change(log.append)
            pair.append(view)
            logs.append(log)
        self.registered.append((query, parameters))
        self.views.append(tuple(pair))
        self.logs.append(tuple(logs))

    def register_all(self) -> None:
        for query in QUERIES:
            self.register(query)
        for query, names in PARAM_QUERIES:
            for lang in LANGS[:3]:
                binding = {"lang": lang}
                if "score" in names:
                    binding["score"] = SCORES[0]
                self.register(query, binding)

    def detach(self, index: int) -> None:
        for view in self.views.pop(index):
            view.detach()
        self.registered.pop(index)
        self.logs.pop(index)

    def apply(self, op) -> None:
        for graph in self.graphs:
            op(graph)

    def assert_consistent(self, use_oracle: bool = False) -> None:
        for (query, parameters), (columnar, baseline) in zip(
            self.registered, self.views
        ):
            assert columnar.multiset() == baseline.multiset(), (query, parameters)
            if use_oracle:
                assert columnar.multiset() == oracle(
                    self.graphs[0], query, parameters
                ), (query, parameters)
        for (query, parameters), (columnar_log, baseline_log) in zip(
            self.registered, self.logs
        ):
            assert columnar_log == baseline_log, (query, parameters)


def _drive(pair, rng, operations=60, rollback_chance=0.08, oracle_every=20):
    for step in range(operations):
        vertices = list(pair.graphs[0].vertices())
        edges = list(pair.graphs[0].edges())
        if rng.random() < rollback_chance:
            ops = [
                _columnar_op(rng, vertices, edges)
                for _ in range(rng.randint(1, 4))
            ]

            def aborted(graph, ops=ops):
                try:
                    with graph.transaction():
                        for op in ops:
                            op(graph)
                        raise _Abort()
                except (_Abort, GraphError):
                    pass

            pair.apply(aborted)
        else:
            pair.apply(_columnar_op(rng, vertices, edges))
        pair.assert_consistent(use_oracle=step % oracle_every == 0)
    pair.assert_consistent(use_oracle=True)


class TestColumnarDifferential:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_stream_matches_row_baseline(self, seed):
        pair = ColumnarMirrorPair()
        pair.register_all()
        _drive(pair, random.Random(900 + seed))

    @pytest.mark.parametrize(
        "flags",
        [
            {"route_events": False},
            {"share_subplans": False},
            {"share_across_bindings": False},
            {"route_events": False, "share_subplans": False},
            {"batch_transactions": True, "route_events": False},
            {"batch_transactions": True, "share_across_bindings": False},
            {"answer_from_views": False},
        ],
        ids=lambda flags: ",".join(f"{k}={v}" for k, v in flags.items()),
    )
    def test_flag_matrix_matches_row_baseline(self, flags):
        """Columnar mode composes with every existing ablation flag."""
        pair = ColumnarMirrorPair(**flags)
        pair.register_all()
        _drive(pair, random.Random(42), operations=30, oracle_every=10)

    @pytest.mark.parametrize("seed", range(2))
    def test_batched_transactions_match_baseline(self, seed):
        rng = random.Random(1000 + seed)
        pair = ColumnarMirrorPair(batch_transactions=True)
        pair.register_all()
        for _ in range(20):
            vertices = list(pair.graphs[0].vertices())
            edges = list(pair.graphs[0].edges())
            ops = [
                _columnar_op(rng, vertices, edges)
                for _ in range(rng.randint(1, 5))
            ]
            abort = rng.random() < 0.3

            def run(graph, ops=ops, abort=abort):
                try:
                    with graph.transaction():
                        for op in ops:
                            op(graph)
                        if abort:
                            raise _Abort()
                except (_Abort, GraphError):
                    pass

            pair.apply(run)
            pair.assert_consistent(use_oracle=True)

    @pytest.mark.parametrize("seed", range(2))
    def test_mid_stream_register_and_detach(self, seed):
        """Late joiners replay shared state (always row-form) correctly."""
        rng = random.Random(1100 + seed)
        pair = ColumnarMirrorPair()
        pair.register(QUERIES[2])
        pool = [(query, None) for query in QUERIES] + [
            (query, {"lang": lang, **({"score": 1} if "score" in names else {})})
            for query, names in PARAM_QUERIES
            for lang in LANGS[:3]
        ]
        for step in range(50):
            vertices = list(pair.graphs[0].vertices())
            edges = list(pair.graphs[0].edges())
            roll = rng.random()
            if roll < 0.15:
                query, parameters = pool[rng.randrange(len(pool))]
                pair.register(query, parameters)
            elif roll < 0.25 and len(pair.views) > 1:
                pair.detach(rng.randrange(len(pair.views)))
            else:
                pair.apply(_columnar_op(rng, vertices, edges))
            pair.assert_consistent(use_oracle=step % 10 == 0)
        pair.assert_consistent(use_oracle=True)

    def test_state_delta_replay_parity_after_stream(self):
        """Registering every query again after a long stream must replay
        shared node state (``state_delta``) to the same contents the
        continuously-maintained twins hold."""
        rng = random.Random(7)
        pair = ColumnarMirrorPair()
        pair.register_all()
        for _ in range(40):
            vertices = list(pair.graphs[0].vertices())
            edges = list(pair.graphs[0].edges())
            pair.apply(_columnar_op(rng, vertices, edges))
        before = len(pair.views)
        for query, parameters in list(pair.registered[:before]):
            pair.register(query, parameters)
        for (query, parameters), (columnar, _) in zip(
            pair.registered[before:], pair.views[before:]
        ):
            assert columnar.multiset() == oracle(
                pair.graphs[0], query, parameters
            ), (query, parameters)
        pair.assert_consistent(use_oracle=True)


class TestColumnDelta:
    def test_from_rows_key_column_and_rows_roundtrip(self):
        rows = [(1, "en", 5), (2, "de", 7), (1, "en", 5)]
        mults = [1, -2, 3]
        batch = ColumnDelta.from_rows(rows, mults, 3)
        assert batch.width == 3
        assert list(batch.rows()) == rows
        assert list(batch.key_column((1,))) == [("en",), ("de",), ("en",)]
        assert list(batch.key_column((2, 0))) == [(5, 1), (7, 2), (5, 1)]
        assert list(batch.items()) == list(zip(rows, mults))

    def test_from_delta_to_delta_consolidates(self):
        delta = Delta()
        delta.add((1, "en"), 2)
        delta.add((2, "de"), -1)
        batch = ColumnDelta.from_delta(delta, 2)
        assert sorted(batch.to_delta().items()) == sorted(delta.items())

    def test_occurrences_stay_unconsolidated_until_to_delta(self):
        batch = ColumnDelta.from_rows([(1,), (1,)], [1, -1], 1)
        assert len(batch.mults) == 2  # occurrence list, not a bag
        assert list(batch.to_delta().items()) == []  # cancels on consolidation

    def test_as_row_delta_passes_row_deltas_through(self):
        delta = Delta()
        delta.add((1,), 1)
        assert as_row_delta(delta) is delta
        batch = ColumnDelta.from_rows([(1,), (1,)], [1, 1], 1)
        assert dict(as_row_delta(batch).items()) == {(1,): 2}

    def test_empty_width_zero_rows(self):
        batch = ColumnDelta.from_rows([(), ()], [1, 1], 0)
        assert list(batch.rows()) == [(), ()]
        assert dict(batch.to_delta().items()) == {(): 2}


class TestIndexMaintenance:
    def assert_no_zero_rows(self, index):
        for key, bucket in index.items():
            assert bucket, f"empty bucket retained under {key!r}"
            for row, count in bucket.items():
                assert count != 0, (key, row)

    def test_index_insert_never_retains_zero_counts(self):
        index = {}
        index_insert(index, "k", (1,), 2)
        index_insert(index, "k", (1,), -2)
        assert "k" not in index
        index_insert(index, "k", (1,), 0)  # no-op, must not create a bucket
        assert index == {}
        index_insert(index, "k", (1,), 1)
        index_insert(index, "k", (2,), 1)
        index_insert(index, "k", (1,), -1)
        assert index == {"k": {(2,): 1}}
        self.assert_no_zero_rows(index)

    def test_index_update_matches_repeated_insert(self):
        rng = random.Random(3)
        keys = [rng.randrange(4) for _ in range(200)]
        rows = [(k, rng.randrange(3)) for k in keys]
        mults = [rng.choice((-2, -1, 0, 1, 2)) for _ in keys]
        bulk, single = {}, {}
        index_update(bulk, keys, rows, mults)
        for key, row, mult in zip(keys, rows, mults):
            index_insert(single, key, row, mult)
        assert bulk == single
        self.assert_no_zero_rows(bulk)


def _engine_pair(**flags):
    graph = PropertyGraph()
    return graph, IncrementalEngine(graph, **flags)


class TestValueRouting:
    def seed_graph(self, graph):
        en = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        de = graph.add_vertex(labels=["Post"], properties={"lang": "de"})
        return en, de

    def test_constant_selection_registers_value_bucket(self):
        graph, engine = _engine_pair()
        self.seed_graph(graph)
        view = _register(engine, "MATCH (p:Post) WHERE p.lang = 'en' RETURN p")
        router = engine.input_layer.router
        assert router._v_value_key_counts.get("lang", 0) >= 1
        assert len(view.rows()) == 1

    def test_irrelevant_value_changes_skip_the_node(self):
        graph, engine = _engine_pair()
        en, de = self.seed_graph(graph)
        view = _register(engine, "MATCH (p:Post) WHERE p.lang = 'en' RETURN p")
        node = next(iter(engine.input_layer._vertex_nodes.values()))
        assert node.value_filters
        activations = []
        inner = node.on_event
        node.on_event = lambda event: (activations.append(event), inner(event))
        # de -> hu: neither old nor new value matches the filter
        graph.set_vertex_property(de, "lang", "hu")
        assert not activations, "value routing must skip non-matching changes"
        assert len(view.rows()) == 1
        # hu -> en: must reach the node and appear in the view
        graph.set_vertex_property(de, "lang", "en")
        assert activations
        assert len(view.rows()) == 2
        # en -> de on the original: retraction also routes by old value
        graph.set_vertex_property(en, "lang", "de")
        assert len(view.rows()) == 1

    def test_filtered_and_unfiltered_nodes_never_collide(self):
        graph, engine = _engine_pair()
        self.seed_graph(graph)
        filtered = _register(engine, "MATCH (p:Post) WHERE p.lang = 'en' RETURN p")
        unfiltered = _register(engine, "MATCH (p:Post) RETURN p")
        assert len(filtered.rows()) == 1
        assert len(unfiltered.rows()) == 2

    def test_detach_unregisters_value_bucket(self):
        # detached_cache_size=0: no LRU keeps the node alive past detach
        graph, engine = _engine_pair(detached_cache_size=0)
        self.seed_graph(graph)
        view = _register(engine, "MATCH (p:Post) WHERE p.lang = 'en' RETURN p")
        assert engine.input_layer.router._v_value_key_counts.get("lang", 0) >= 1
        view.detach()
        assert engine.input_layer.router._v_value_key_counts.get("lang", 0) == 0

    def test_row_mode_disables_pushdown_and_batches(self):
        graph, engine = _engine_pair(columnar_deltas=False)
        en, de = self.seed_graph(graph)
        view = _register(engine, "MATCH (p:Post) WHERE p.lang = 'en' RETURN p")
        for node in engine.input_layer._vertex_nodes.values():
            assert not node.value_filters
            assert not node.columnar
        assert not engine.input_layer.router._v_value_key_counts
        graph.set_vertex_property(de, "lang", "en")
        assert len(view.rows()) == 2
        network = engine.views[0].network
        assert all(
            node.columnar_batches == 0 for node in network.nodes()
        ), "row mode must never see a ColumnDelta"


def _register(engine: IncrementalEngine, query: str, parameters=None):
    from repro.compiler.pipeline import compile_query

    return engine.register(compile_query(query), parameters)


class TestCompositeBindings:
    QUERY = "MATCH (p:Post) WHERE p.lang = $lang AND p.score = $score RETURN p"

    def seed(self, graph):
        for lang, score in (("en", 1), ("en", 2), ("de", 1)):
            graph.add_vertex(
                labels=["Post"], properties={"lang": lang, "score": score}
            )

    def test_composite_discriminant_probes_one_bucket(self):
        graph, engine = _engine_pair()
        self.seed(graph)
        views = {
            (lang, score): _register(
                engine, self.QUERY, {"lang": lang, "score": score}
            )
            for lang in ("en", "de")
            for score in (1, 2)
        }
        layer = engine.input_layer
        assert layer.binding_node_count == 1
        assert layer.binding_partition_count == 4
        binding_nodes = [entry.node for entry in layer._param_nodes.values()]
        assert len(binding_nodes) == 1
        assert len(binding_nodes[0]._disc_names) == 2  # composite, not first-only
        assert len(views[("en", 1)].rows()) == 1
        assert len(views[("en", 2)].rows()) == 1
        assert len(views[("de", 1)].rows()) == 1
        assert len(views[("de", 2)].rows()) == 0
        extra = graph.add_vertex(
            labels=["Post"], properties={"lang": "de", "score": 2}
        )
        assert len(views[("de", 2)].rows()) == 1
        graph.remove_vertex(extra)
        assert len(views[("de", 2)].rows()) == 0

    def test_row_mode_keeps_single_discriminant(self):
        graph, engine = _engine_pair(columnar_deltas=False)
        self.seed(graph)
        view = _register(engine, self.QUERY, {"lang": "en", "score": 1})
        layer = engine.input_layer
        binding_nodes = [entry.node for entry in layer._param_nodes.values()]
        assert len(binding_nodes) == 1
        assert len(binding_nodes[0]._disc_names) == 1  # PR 5 behaviour exactly
        assert len(view.rows()) == 1

    def test_non_atom_binding_falls_back_to_scan(self):
        graph, engine = _engine_pair()
        self.seed(graph)
        matching = _register(engine, self.QUERY, {"lang": "en", "score": 1})
        null_bound = _register(engine, self.QUERY, {"lang": None, "score": 1})
        graph.add_vertex(labels=["Post"], properties={"score": 1})
        assert len(matching.rows()) == 1
        assert len(null_bound.rows()) == 0  # NULL = NULL is not truth


class TestProfile:
    def test_profile_reports_rows_per_call_and_batch_fill(self):
        graph, engine = _engine_pair(batch_transactions=True)
        view = _register(
            engine, "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c"
        )
        with engine.batch():
            posts = [
                graph.add_vertex(labels=["Post"], properties={"lang": "en"})
                for _ in range(5)
            ]
            comment = graph.add_vertex(labels=["Comm"])
            for post in posts:
                graph.add_edge(post, comment, "REPLY")
        report = engine.views[0].profile()
        assert "rows/call" in report
        assert "batch fill" in report
        assert len(view.rows()) == 5

    def test_profile_row_mode_shows_no_batches(self):
        graph, engine = _engine_pair(columnar_deltas=False)
        _register(engine, "MATCH (p:Post) RETURN p")
        graph.add_vertex(labels=["Post"])
        report = engine.views[0].profile()
        assert "rows/call" in report
        assert "batch fill" in report
