"""Columnar node memories: differential oracle against the row-dict path.

``columnar_memories=True`` (the default) re-homes the counting-linear
node memories — join/antijoin/outer-join indexes and the binding tier's
value indexes — onto :class:`~repro.rete.deltas.ColumnStore`, a
column-backed keyed bag whose key cells are stored once per distinct
key, and routes transition-sensitive count-map keys (δ, γ, ⋈*,
production) through one engine-wide :class:`~repro.rete.deltas.RowInterner`.
All of that must be *invisible*: the mirror class here drives identical
random streams through a column-memory engine and its
``columnar_memories=False`` baseline (the exact PR 1–9 row-dict path)
and requires identical per-view contents and change logs throughout —
across per-event and batched maintenance, rollback transactions, process
sharding, binding-tier sharing, columnar and row deltas, and mid-stream
register/detach.  Mechanics classes pin the store itself (row-dict
write/read equivalence, free-list reuse, accounting) and the interner
(refcounts, type-exactness, teardown).
"""

import random

import pytest

from repro import PropertyGraph, QueryEngine
from repro.errors import GraphError
from repro.rete.deltas import (
    ColumnStore,
    RowInterner,
    index_cells,
    index_insert,
    index_size,
    index_update,
)

from .test_columnar import LANGS, PARAM_QUERIES, QUERIES, _columnar_op, oracle
from .test_sharing import _Abort


class MemoryMirrorPair:
    """A column-memory engine and its row-dict baseline, fed identically."""

    def __init__(self, **flags):
        self.graphs = (PropertyGraph(), PropertyGraph())
        self.engines = (
            QueryEngine(self.graphs[0], columnar_memories=True, **flags),
            QueryEngine(self.graphs[1], columnar_memories=False, **flags),
        )
        self.registered: list[tuple[str, dict | None]] = []
        self.views: list[tuple] = []
        self.logs: list[tuple] = []

    def close(self) -> None:
        for engine in self.engines:
            engine.shutdown()

    def register(self, query: str, parameters=None) -> None:
        pair, logs = [], []
        for engine in self.engines:
            view = engine.register(query, parameters=parameters)
            log: list = []
            view.on_change(log.append)
            pair.append(view)
            logs.append(log)
        self.registered.append((query, parameters))
        self.views.append(tuple(pair))
        self.logs.append(tuple(logs))

    def register_all(self) -> None:
        for query in QUERIES:
            self.register(query)
        for query, names in PARAM_QUERIES:
            for lang in LANGS[:3]:
                binding = {"lang": lang}
                if "score" in names:
                    binding["score"] = 1
                self.register(query, binding)

    def detach(self, index: int) -> None:
        for view in self.views.pop(index):
            view.detach()
        self.registered.pop(index)
        self.logs.pop(index)

    def apply(self, op) -> None:
        for graph in self.graphs:
            op(graph)

    def assert_consistent(self, use_oracle: bool = False) -> None:
        for (query, parameters), (columnar, baseline) in zip(
            self.registered, self.views
        ):
            assert columnar.multiset() == baseline.multiset(), (query, parameters)
            if use_oracle:
                assert columnar.multiset() == oracle(
                    self.graphs[0], query, parameters
                ), (query, parameters)
        for (query, parameters), (columnar_log, baseline_log) in zip(
            self.registered, self.logs
        ):
            assert columnar_log == baseline_log, (query, parameters)


def _drive(pair, rng, operations=60, rollback_chance=0.08, oracle_every=20):
    for step in range(operations):
        vertices = list(pair.graphs[0].vertices())
        edges = list(pair.graphs[0].edges())
        if rng.random() < rollback_chance:
            ops = [
                _columnar_op(rng, vertices, edges)
                for _ in range(rng.randint(1, 4))
            ]

            def aborted(graph, ops=ops):
                try:
                    with graph.transaction():
                        for op in ops:
                            op(graph)
                        raise _Abort()
                except (_Abort, GraphError):
                    pass

            pair.apply(aborted)
        else:
            pair.apply(_columnar_op(rng, vertices, edges))
        pair.assert_consistent(use_oracle=step % oracle_every == 0)
    pair.assert_consistent(use_oracle=True)


#: the outer-join query exercises the dissolved right-count map
#: (``ColumnStore.key_weight``) — not part of the shared corpus
OPTIONAL_QUERY = (
    "MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(c:Comm) RETURN p, c"
)


class TestColumnarMemoryDifferential:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_stream_matches_row_dict_baseline(self, seed):
        pair = MemoryMirrorPair()
        pair.register_all()
        pair.register(OPTIONAL_QUERY)
        _drive(pair, random.Random(1300 + seed))

    @pytest.mark.parametrize(
        "flags",
        [
            {"columnar_deltas": False},
            {"route_events": False},
            {"share_subplans": False},
            {"share_across_bindings": False},
            {"batch_transactions": True},
            {"batch_transactions": True, "columnar_deltas": False},
            {"batch_transactions": True, "share_across_bindings": False},
            {"workers": 2},
            {"workers": 2, "batch_transactions": True},
        ],
        ids=lambda flags: ",".join(f"{k}={v}" for k, v in flags.items()),
    )
    def test_flag_matrix_matches_row_dict_baseline(self, flags):
        """Column memories compose with every existing ablation flag —
        including row deltas folding into column stores and the sharded
        tier replicating the flag into worker processes."""
        pair = MemoryMirrorPair(**flags)
        try:
            pair.register_all()
            pair.register(OPTIONAL_QUERY)
            _drive(pair, random.Random(64), operations=30, oracle_every=10)
        finally:
            pair.close()

    @pytest.mark.parametrize("seed", range(2))
    def test_mid_stream_register_and_detach(self, seed):
        """Late joiners replay shared state (always row-form) into column
        stores; detach releases interned rows without disturbing twins."""
        rng = random.Random(1400 + seed)
        pair = MemoryMirrorPair()
        pair.register(QUERIES[2])
        pool = [(query, None) for query in QUERIES] + [
            (query, {"lang": lang, **({"score": 1} if "score" in names else {})})
            for query, names in PARAM_QUERIES
            for lang in LANGS[:3]
        ]
        for step in range(50):
            vertices = list(pair.graphs[0].vertices())
            edges = list(pair.graphs[0].edges())
            roll = rng.random()
            if roll < 0.15:
                query, parameters = pool[rng.randrange(len(pool))]
                pair.register(query, parameters)
            elif roll < 0.25 and len(pair.views) > 1:
                pair.detach(rng.randrange(len(pair.views)))
            else:
                pair.apply(_columnar_op(rng, vertices, edges))
            pair.assert_consistent(use_oracle=step % 10 == 0)
        pair.assert_consistent(use_oracle=True)

    def test_state_delta_replay_parity_after_stream(self):
        """Shared-node replay out of column stores must hand late twins
        the same row-form contents the row-dict baseline replays."""
        rng = random.Random(11)
        pair = MemoryMirrorPair()
        pair.register_all()
        pair.register(OPTIONAL_QUERY)
        for _ in range(40):
            vertices = list(pair.graphs[0].vertices())
            edges = list(pair.graphs[0].edges())
            pair.apply(_columnar_op(rng, vertices, edges))
        before = len(pair.views)
        for query, parameters in list(pair.registered[:before]):
            pair.register(query, parameters)
        for (query, parameters), (columnar, _) in zip(
            pair.registered[before:], pair.views[before:]
        ):
            assert columnar.multiset() == oracle(
                pair.graphs[0], query, parameters
            ), (query, parameters)
        pair.assert_consistent(use_oracle=True)

    def test_accounting_keeps_meaning_across_representations(self):
        """memory_size counts entries and stays identical both ways;
        memory_cells counts stored fields, so the columnar number may
        only shrink (key dedup), never grow."""
        pair = MemoryMirrorPair()
        pair.register_all()
        pair.register(OPTIONAL_QUERY)
        rng = random.Random(21)
        for _ in range(40):
            vertices = list(pair.graphs[0].vertices())
            edges = list(pair.graphs[0].edges())
            pair.apply(_columnar_op(rng, vertices, edges))
        columnar, baseline = pair.engines
        assert columnar.memory_size() == baseline.memory_size()
        assert 0 < columnar.memory_cells() <= baseline.memory_cells()

    def test_detaching_every_view_empties_the_intern_pool(self):
        """dispose() releases each node's interned rows — after the last
        view detaches the engine-wide pool must be empty, or refcounts
        leaked somewhere in the fold/teardown paths."""
        graph = PropertyGraph()
        engine = QueryEngine(graph, detached_cache_size=0)
        incremental = engine._incremental
        assert incremental.interner is not None
        views = [engine.register(query) for query in QUERIES]
        rng = random.Random(31)
        for _ in range(30):
            vertices = list(graph.vertices())
            edges = list(graph.edges())
            _columnar_op(rng, vertices, edges)(graph)
        assert len(incremental.interner) > 0
        for view in views:
            view.detach()
        assert len(incremental.interner) == 0


class TestColumnStore:
    def _mirror(self, seed, key_cols=(0,), payload_cols=(1, 2), bulk=False):
        """Drive identical folds through a ColumnStore and a row-dict
        index; return both."""
        rng = random.Random(seed)
        store = ColumnStore(key_cols, payload_cols)
        rows = [
            (rng.randrange(4), rng.randrange(3), rng.choice("abc"))
            for _ in range(300)
        ]
        keys = [tuple(row[i] for i in key_cols) for row in rows]
        mults = [rng.choice((-2, -1, 0, 1, 2)) for _ in rows]
        plain: dict = {}
        if bulk:
            store.insert_batch(keys, rows, mults)
        else:
            for key, row, mult in zip(keys, rows, mults):
                store.insert(key, row, mult)
        for key, row, mult in zip(keys, rows, mults):
            index_insert(plain, key, row, mult)
        return store, plain

    def _as_dict(self, store):
        return {
            key: dict(bucket.items()) for key, bucket in store.items()
        }

    @pytest.mark.parametrize("bulk", [False, True])
    def test_insert_matches_row_dict_index(self, bulk):
        store, plain = self._mirror(5, bulk=bulk)
        assert self._as_dict(store) == plain
        assert index_size(store) == index_size(plain)

    def test_index_update_dispatches_to_store(self):
        store = ColumnStore((0,), (1,))
        plain: dict = {}
        keys = [(1,), (2,), (1,)]
        rows = [(1, "a"), (2, "b"), (1, "a")]
        mults = [1, 1, -1]
        index_update(store, keys, rows, mults)
        index_update(plain, keys, rows, mults)
        assert self._as_dict(store) == plain

    def test_insert_columns_matches_row_form(self):
        rng = random.Random(9)
        rows = [(rng.randrange(3), rng.randrange(3)) for _ in range(100)]
        keys = [(row[0],) for row in rows]
        mults = [rng.choice((-1, 1)) for _ in rows]
        columns = [list(col) for col in zip(*rows)]
        by_columns = ColumnStore((0,), (1,))
        by_columns.insert_columns(keys, columns, mults)
        by_rows = ColumnStore((0,), (1,))
        by_rows.insert_batch(keys, rows, mults)
        assert self._as_dict(by_columns) == self._as_dict(by_rows)

    def test_cancelled_slots_go_on_the_free_list_and_get_reused(self):
        store = ColumnStore((0,), (1,))
        store.insert((1,), (1, "a"), 1)
        store.insert((1,), (1, "b"), 1)
        assert store.size() == 2 and not store.free
        store.insert((1,), (1, "a"), -1)
        assert store.size() == 1 and len(store.free) == 1
        store.insert((2,), (2, "c"), 1)
        assert store.size() == 2 and not store.free  # slot reused
        assert len(store.mults) == 2  # storage did not grow

    def test_emptied_buckets_leave_the_index(self):
        store = ColumnStore((0,), (1,))
        store.insert((1,), (1, "a"), 2)
        store.insert((1,), (1, "a"), -2)
        assert store.get((1,)) is None
        assert not store and store.size() == 0 and store.cells() == 0

    def test_key_weight_sums_bucket_multiplicities(self):
        store = ColumnStore((0,), (1,))
        assert store.key_weight((1,)) == 0
        store.insert((1,), (1, "a"), 2)
        store.insert((1,), (1, "b"), 3)
        store.insert((1,), (1, "a"), -1)
        assert store.key_weight((1,)) == 4

    def test_cells_counts_keys_once_per_distinct_key(self):
        store = ColumnStore((0, 1), (2,))
        for suffix in "abc":
            store.insert((1, 2), (1, 2, suffix), 1)
        # 3 payload cells + one 2-wide key vs 9 cells in the row path
        assert store.cells() == 5
        plain: dict = {}
        for suffix in "abc":
            index_insert(plain, (1, 2), (1, 2, suffix), 1)
        assert index_cells(plain) == 9

    def test_bucket_is_re_iterable_within_one_step(self):
        store = ColumnStore((0,), (1,))
        store.insert((1,), (1, "a"), 2)
        bucket = store.get((1,))
        assert list(bucket.items()) == [((1, "a"), 2)]
        assert list(bucket.items()) == [((1, "a"), 2)]  # fresh generator
        assert list(bucket.payloads()) == [(("a",), 2)]
        assert len(bucket) == 1 and bool(bucket)

    def test_key_payload_must_partition_the_width(self):
        with pytest.raises(ValueError):
            ColumnStore((0, 1), (1,))


class TestRowInterner:
    def test_refcounted_canonicalisation(self):
        interner = RowInterner()
        first = (1, "en")
        second = (1, "en")
        assert interner.intern(first) is first
        assert interner.intern(second) is first  # canonical survivor
        assert len(interner) == 1
        interner.release((1, "en"))
        assert len(interner) == 1  # one reference still out
        interner.release((1, "en"))
        assert len(interner) == 0

    def test_type_exact_pooling(self):
        """1 == True == 1.0 in Python; the pool must never hand a view a
        differently-typed equal tuple."""
        interner = RowInterner()
        as_int = interner.intern((7, 1))
        as_bool = interner.intern((7, True))
        as_float = interner.intern((7, 1.0))
        assert as_int == as_bool == as_float
        assert isinstance(as_int[1], int) and not isinstance(as_int[1], bool)
        assert as_bool[1] is True
        assert isinstance(as_float[1], float)
        assert len(interner) == 3

    def test_non_atomic_rows_pass_through_unpooled(self):
        interner = RowInterner()
        row = (1, [2, 3])
        assert interner.intern(row) is row
        assert len(interner) == 0
        interner.release(row)  # symmetric no-op

    def test_short_rows_pass_through_unpooled(self):
        """Pooling a 1-tuple costs more than sharing it saves — aggregate
        outputs churn through them on every transition."""
        interner = RowInterner()
        for row in ((), (7,)):
            assert interner.intern(row) is row
            interner.release(row)
        assert len(interner) == 0

    def test_release_all(self):
        interner = RowInterner()
        rows = [interner.intern((i, i)) for i in range(5)]
        interner.release_all(rows)
        assert len(interner) == 0

    def test_release_of_unknown_row_is_a_no_op(self):
        interner = RowInterner()
        interner.release((1, 2))
        assert len(interner) == 0
