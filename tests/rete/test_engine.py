"""View maintenance tests: every update type against every operator shape.

Each test mutates the graph and asserts the view equals the
full-recomputation oracle — the paper's IVM property — and, where the
*content* of the change matters, also asserts exact rows.
"""

import pytest

from repro import PropertyGraph, QueryEngine, UnsupportedForIncrementalError
from repro.graph.values import ListValue, PathValue

from ..conftest import PAPER_QUERY, assert_view_matches_oracle


@pytest.fixture
def graph():
    return PropertyGraph()


@pytest.fixture
def engine(graph):
    return QueryEngine(graph)


class TestRegistration:
    def test_view_populates_from_existing_data(self, graph, engine):
        graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        view = engine.register("MATCH (p:Post) RETURN p.lang AS l")
        assert view.rows() == [("en",)]

    def test_ordering_queries_rejected(self, engine):
        with pytest.raises(UnsupportedForIncrementalError):
            engine.register("MATCH (n:Post) RETURN n ORDER BY n")
        with pytest.raises(UnsupportedForIncrementalError):
            engine.register("MATCH (n:Post) RETURN n LIMIT 3")

    def test_same_query_evaluates_one_shot(self, engine):
        # outside the fragment → still supported one-shot (paper's trade-off)
        assert engine.evaluate("MATCH (n:Post) RETURN n LIMIT 3").rows() == []

    def test_columns(self, graph, engine):
        view = engine.register("MATCH (p:Post) RETURN p, p.lang AS l")
        assert view.columns == ("p", "l")

    def test_multiple_views_one_graph(self, graph, engine):
        first = engine.register("MATCH (p:Post) RETURN p")
        second = engine.register("MATCH (c:Comm) RETURN c")
        post = graph.add_vertex(labels=["Post"])
        comment = graph.add_vertex(labels=["Comm"])
        assert first.rows() == [(post,)]
        assert second.rows() == [(comment,)]

    def test_detach_stops_maintenance(self, graph, engine):
        view = engine.register("MATCH (p:Post) RETURN p")
        view.detach()
        graph.add_vertex(labels=["Post"])
        assert view.rows() == []


class TestVertexUpdates:
    def test_add_and_remove(self, graph, engine):
        view = engine.register("MATCH (p:Post) RETURN p")
        post = graph.add_vertex(labels=["Post"])
        assert view.rows() == [(post,)]
        graph.remove_vertex(post)
        assert view.rows() == []

    def test_label_addition_brings_vertex_in(self, graph, engine):
        vertex = graph.add_vertex()
        view = engine.register("MATCH (p:Post) RETURN p")
        graph.add_label(vertex, "Post")
        assert view.rows() == [(vertex,)]
        graph.remove_label(vertex, "Post")
        assert view.rows() == []

    def test_multi_label_membership(self, graph, engine):
        vertex = graph.add_vertex(labels=["Post"])
        view = engine.register("MATCH (p:Post:Pinned) RETURN p")
        assert view.rows() == []
        graph.add_label(vertex, "Pinned")
        assert view.rows() == [(vertex,)]

    def test_property_change_updates_pushed_column(self, graph, engine):
        post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        view = engine.register("MATCH (p:Post) RETURN p.lang AS l")
        graph.set_vertex_property(post, "lang", "de")
        assert view.rows() == [("de",)]

    def test_property_removal_yields_null(self, graph, engine):
        post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        view = engine.register("MATCH (p:Post) RETURN p.lang AS l")
        graph.set_vertex_property(post, "lang", None)
        assert view.rows() == [(None,)]

    def test_property_change_flips_predicate(self, graph, engine):
        post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        view = engine.register("MATCH (p:Post) WHERE p.lang = 'en' RETURN p")
        assert view.rows() == [(post,)]
        graph.set_vertex_property(post, "lang", "fr")
        assert view.rows() == []
        graph.set_vertex_property(post, "lang", "en")
        assert view.rows() == [(post,)]

    def test_labels_function_tracks_label_events(self, graph, engine):
        vertex = graph.add_vertex(labels=["Post"])
        view = engine.register("MATCH (p:Post) RETURN labels(p) AS ls")
        graph.add_label(vertex, "Pinned")
        assert view.rows() == [(ListValue(("Pinned", "Post")),)]

    def test_irrelevant_property_change_is_ignored(self, graph, engine):
        post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        view = engine.register("MATCH (p:Post) RETURN p.lang AS l")
        changes = []
        view.on_change(changes.append)
        graph.set_vertex_property(post, "unrelated", 1)
        assert changes == []


class TestEdgeUpdates:
    def test_edge_add_remove(self, graph, engine):
        a = graph.add_vertex(labels=["Post"])
        b = graph.add_vertex(labels=["Comm"])
        view = engine.register("MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c")
        edge = graph.add_edge(a, b, "REPLY")
        assert view.rows() == [(a, b)]
        graph.remove_edge(edge)
        assert view.rows() == []

    def test_edge_of_wrong_type_ignored(self, graph, engine):
        a = graph.add_vertex(labels=["Post"])
        b = graph.add_vertex(labels=["Comm"])
        view = engine.register("MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c")
        graph.add_edge(a, b, "LIKES")
        assert view.rows() == []

    def test_endpoint_label_change_updates_edge_tuples(self, graph, engine):
        a = graph.add_vertex(labels=["Post"])
        b = graph.add_vertex()
        graph.add_edge(a, b, "REPLY")
        view = engine.register("MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c")
        assert view.rows() == []
        graph.add_label(b, "Comm")
        assert view.rows() == [(a, b)]
        graph.remove_label(b, "Comm")
        assert view.rows() == []

    def test_edge_property_filter(self, graph, engine):
        a = graph.add_vertex(labels=["Person"])
        b = graph.add_vertex(labels=["Person"])
        edge = graph.add_edge(a, b, "KNOWS", properties={"since": 2020})
        view = engine.register(
            "MATCH (a:Person)-[k:KNOWS]->(b:Person) WHERE k.since < 2022 RETURN a, b"
        )
        assert view.rows() == [(a, b)]
        graph.set_edge_property(edge, "since", 2024)
        assert view.rows() == []

    def test_endpoint_property_join_predicate(self, graph, engine):
        post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        comment = graph.add_vertex(labels=["Comm"], properties={"lang": "de"})
        graph.add_edge(post, comment, "REPLY")
        view = engine.register(
            "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c"
        )
        assert view.rows() == []
        graph.set_vertex_property(comment, "lang", "en")
        assert view.rows() == [(post, comment)]

    def test_detach_delete_cleans_joins(self, graph, engine):
        a = graph.add_vertex(labels=["Post"])
        b = graph.add_vertex(labels=["Comm"])
        graph.add_edge(a, b, "REPLY")
        view = engine.register("MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c")
        graph.remove_vertex(b, detach=True)
        assert view.rows() == []

    def test_undirected_pattern(self, graph, engine):
        a = graph.add_vertex(labels=["Person"])
        b = graph.add_vertex(labels=["Person"])
        view = engine.register("MATCH (x:Person)-[:KNOWS]-(y:Person) RETURN x, y")
        graph.add_edge(a, b, "KNOWS")
        assert sorted(view.rows()) == [(a, b), (b, a)]

    def test_self_loop_undirected_matches_once(self, graph, engine):
        a = graph.add_vertex(labels=["Person"])
        view = engine.register("MATCH (x:Person)-[:KNOWS]-(y) RETURN x, y")
        graph.add_edge(a, a, "KNOWS")
        assert view.rows() == [(a, a)]


class TestPathMaintenance:
    """The paper's running example under updates — atomic path semantics."""

    def test_paper_example_initial(self, paper_graph, paper_engine):
        view = paper_engine.register(PAPER_QUERY)
        rows = view.rows()
        assert [(r[0], r[1].vertices) for r in rows] == [
            (1, (1, 2)),
            (1, (1, 2, 3)),
        ]

    def test_new_reply_extends_thread(self, paper_graph, paper_engine):
        view = paper_engine.register(PAPER_QUERY)
        new_comment = paper_graph.add_vertex(
            labels=["Comm"], properties={"lang": "en"}
        )
        paper_graph.add_edge(3, new_comment, "REPLY")
        assert len(view.rows()) == 3

    def test_edge_deletion_removes_paths_atomically(self, paper_graph, paper_engine):
        view = paper_engine.register(PAPER_QUERY)
        # deleting the 2→3 edge kills exactly the [1,2,3] path
        edge = next(iter(paper_graph.out_edges(2, "REPLY")))
        paper_graph.remove_edge(edge)
        rows = view.rows()
        assert [(r[0], r[1].vertices) for r in rows] == [(1, (1, 2))]

    def test_lang_change_filters_thread(self, paper_graph, paper_engine):
        view = paper_engine.register(PAPER_QUERY)
        paper_graph.set_vertex_property(3, "lang", "de")
        assert len(view.rows()) == 1
        paper_graph.set_vertex_property(3, "lang", "en")
        assert len(view.rows()) == 2

    def test_paths_are_atomic_values(self, paper_graph, paper_engine):
        view = paper_engine.register(PAPER_QUERY)
        changes = []
        view.on_change(changes.append)
        edge = next(iter(paper_graph.out_edges(2, "REPLY")))
        paper_graph.remove_edge(edge)
        # exactly one retraction of the whole path; nothing "patched"
        (delta,) = changes
        items = dict(delta.items())
        assert list(items.values()) == [-1]
        ((post, path),) = [row for row in items]
        assert isinstance(path, PathValue)

    def test_reroute_replaces_path(self, paper_graph, paper_engine):
        """The paper's motivating IVM case: one transaction deletes an edge
        in the path but adds another that keeps the endpoints connected —
        the old path is deleted and the new one inserted."""
        view = paper_engine.register(PAPER_QUERY)
        edge = next(iter(paper_graph.out_edges(2, "REPLY")))
        paper_graph.remove_edge(edge)
        paper_graph.add_edge(1, 3, "REPLY")  # direct reply instead
        rows = view.rows()
        assert {r[1].vertices for r in rows} == {(1, 2), (1, 3)}

    def test_bounded_hops(self, paper_graph, paper_engine):
        view = paper_engine.register(
            "MATCH (p:Post)-[:REPLY*2..2]->(c:Comm) RETURN p, c"
        )
        assert view.rows() == [(1, 3)]

    def test_zero_hop_pattern(self, paper_graph, paper_engine):
        view = paper_engine.register(
            "MATCH (p:Post)-[:REPLY*0..1]->(x) RETURN p, x"
        )
        assert sorted(view.rows()) == [(1, 1), (1, 2)]

    def test_path_unwinding_maintained(self, paper_graph, paper_engine):
        view = paper_engine.register(
            "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) UNWIND nodes(t) AS n RETURN n"
        )
        # paths [1,2] and [1,2,3] → bag {1×2, 2×2, 3×1}
        assert view.multiset() == {(1,): 2, (2,): 2, (3,): 1}
        edge = next(iter(paper_graph.out_edges(2, "REPLY")))
        paper_graph.remove_edge(edge)
        assert view.multiset() == {(1,): 1, (2,): 1}


class TestAggregateMaintenance:
    def test_global_count_from_empty(self, graph, engine):
        view = engine.register("MATCH (p:Post) RETURN count(*) AS n")
        assert view.rows() == [(0,)]
        a = graph.add_vertex(labels=["Post"])
        graph.add_vertex(labels=["Post"])
        assert view.rows() == [(2,)]
        graph.remove_vertex(a)
        assert view.rows() == [(1,)]

    def test_grouped_count_tracks_groups(self, graph, engine):
        view = engine.register("MATCH (c:Comm) RETURN c.lang AS l, count(*) AS n")
        a = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        graph.add_vertex(labels=["Comm"], properties={"lang": "de"})
        assert sorted(view.rows()) == [("de", 1), ("en", 2)]
        graph.set_vertex_property(a, "lang", "de")
        assert sorted(view.rows()) == [("de", 2), ("en", 1)]

    def test_group_disappears_when_empty(self, graph, engine):
        view = engine.register("MATCH (c:Comm) RETURN c.lang AS l, count(*) AS n")
        a = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        graph.remove_vertex(a)
        assert view.rows() == []

    def test_sum_and_collect_under_updates(self, graph, engine):
        view = engine.register(
            "MATCH (p:Post) RETURN sum(p.score) AS s, collect(p.score) AS xs"
        )
        a = graph.add_vertex(labels=["Post"], properties={"score": 3})
        graph.add_vertex(labels=["Post"], properties={"score": 5})
        assert view.rows() == [(8, ListValue((3, 5)))]
        graph.set_vertex_property(a, "score", 10)
        assert view.rows() == [(15, ListValue((5, 10)))]

    def test_count_replies_per_post(self, paper_graph, paper_engine):
        view = paper_engine.register(
            "MATCH (p:Post)-[:REPLY*]->(c:Comm) RETURN p, count(c) AS n"
        )
        assert view.rows() == [(1, 2)]
        new_comment = paper_graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        paper_graph.add_edge(2, new_comment, "REPLY")
        assert view.rows() == [(1, 3)]


class TestOptionalAndDistinct:
    def test_optional_match_toggles_padding(self, graph, engine):
        post = graph.add_vertex(labels=["Post"])
        view = engine.register(
            "MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(c:Comm) RETURN p, c"
        )
        assert view.rows() == [(post, None)]
        comment = graph.add_vertex(labels=["Comm"])
        edge = graph.add_edge(post, comment, "REPLY")
        assert view.rows() == [(post, comment)]
        graph.remove_edge(edge)
        assert view.rows() == [(post, None)]

    def test_distinct_collapses_and_restores(self, graph, engine):
        post = graph.add_vertex(labels=["Post"])
        c1 = graph.add_vertex(labels=["Comm"])
        c2 = graph.add_vertex(labels=["Comm"])
        view = engine.register(
            "MATCH (p:Post)-[:REPLY]->(:Comm) RETURN DISTINCT p"
        )
        e1 = graph.add_edge(post, c1, "REPLY")
        graph.add_edge(post, c2, "REPLY")
        assert view.rows() == [(post,)]
        graph.remove_edge(e1)
        assert view.rows() == [(post,)]  # still one witness

    def test_with_having_pattern(self, graph, engine):
        view = engine.register(
            "MATCH (p:Post)-[:REPLY]->(c:Comm) "
            "WITH p, count(c) AS n WHERE n >= 2 RETURN p, n"
        )
        post = graph.add_vertex(labels=["Post"])
        c1 = graph.add_vertex(labels=["Comm"])
        c2 = graph.add_vertex(labels=["Comm"])
        graph.add_edge(post, c1, "REPLY")
        assert view.rows() == []
        graph.add_edge(post, c2, "REPLY")
        assert view.rows() == [(post, 2)]

    def test_union_maintained(self, graph, engine):
        view = engine.register(
            "MATCH (p:Post) RETURN p AS n UNION MATCH (c:Comm) RETURN c AS n"
        )
        post = graph.add_vertex(labels=["Post", "Comm"])  # in both branches
        assert view.rows() == [(post,)]  # UNION deduplicates


class TestChangeCallbacks:
    def test_callback_receives_net_delta(self, graph, engine):
        view = engine.register("MATCH (p:Post) RETURN p")
        changes = []
        view.on_change(changes.append)
        post = graph.add_vertex(labels=["Post"])
        assert len(changes) == 1
        assert dict(changes[0].items()) == {(post,): 1}

    def test_no_callback_for_cancelled_delta(self, graph, engine):
        post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        view = engine.register(
            "MATCH (p:Post) WHERE p.lang IS NOT NULL RETURN p"
        )
        changes = []
        view.on_change(changes.append)
        graph.set_vertex_property(post, "lang", "de")  # stays matching: -row +row cancels
        assert changes == []

    def test_oracle_property_on_callbacks(self, graph, engine):
        view = engine.register("MATCH (p:Post)-[:REPLY]->(c) RETURN p, c")
        a = graph.add_vertex(labels=["Post"])
        b = graph.add_vertex(labels=["Comm"])
        graph.add_edge(a, b, "REPLY")
        assert_view_matches_oracle(engine, view, "MATCH (p:Post)-[:REPLY]->(c) RETURN p, c")


class TestParameters:
    def test_parameterised_view(self, graph, engine):
        graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        post_de = graph.add_vertex(labels=["Post"], properties={"lang": "de"})
        view = engine.register(
            "MATCH (p:Post) WHERE p.lang = $lang RETURN p", parameters={"lang": "de"}
        )
        assert view.rows() == [(post_de,)]
        another = graph.add_vertex(labels=["Post"], properties={"lang": "de"})
        assert sorted(view.rows()) == sorted([(post_de,), (another,)])


class TestProfileCells:
    def test_profile_reports_cells_for_beta_nodes(self, graph, engine):
        view = engine.register(
            "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c"
        )
        post = graph.add_vertex(labels=["Post"])
        comm = graph.add_vertex(labels=["Comm"])
        graph.add_edge(post, comm, "REPLY")
        text = view.profile()
        header = text.splitlines()[0]
        assert header.split()[-1] == "cells"
        join_lines = [
            line for line in text.splitlines() if line.startswith("Join")
        ]
        assert join_lines and all(
            int(line.split()[-1]) > 0 for line in join_lines
        )
