"""Unit tests for individual Rete nodes, driven with hand-built deltas."""

import pytest

from repro.algebra.expressions import AggregateSpec, EvalContext, compile_expr
from repro.algebra.schema import AttrKind, Attribute, Schema
from repro.cypher import parse_expression
from repro.graph.values import ListValue, PathValue
from repro.rete.deltas import Delta
from repro.rete.nodes.aggregate import AggregateNode
from repro.rete.nodes.base import LEFT, RIGHT, Node
from repro.rete.nodes.join import (
    AntiJoinNode,
    JoinNode,
    LeftOuterJoinNode,
    UnionNode,
)
from repro.rete.nodes.transitive import EDGES, TransitiveClosureNode
from repro.rete.nodes.unary import (
    DedupNode,
    ProjectionNode,
    SelectionNode,
    UnwindNode,
)

CTX = EvalContext({})


class Sink(Node):
    """Collects emitted deltas and accumulates the net bag."""

    def __init__(self):
        super().__init__(Schema(()))
        self.deltas: list[Delta] = []
        self.bag: dict[tuple, int] = {}

    def apply(self, delta: Delta, side: int) -> None:
        self.deltas.append(delta)
        for row, multiplicity in delta.items():
            count = self.bag.get(row, 0) + multiplicity
            if count:
                self.bag[row] = count
            else:
                del self.bag[row]


def delta(*items):
    d = Delta()
    for row, multiplicity in items:
        d.add(row, multiplicity)
    return d


def value_schema(*names):
    return Schema([Attribute(n, AttrKind.VALUE) for n in names])


class TestDelta:
    def test_zero_entries_vanish(self):
        d = delta((("a",), 1), (("a",), -1))
        assert not d
        assert len(d) == 0

    def test_accumulation(self):
        d = delta((("a",), 1), (("a",), 2))
        assert dict(d.items()) == {("a",): 3}

    def test_negated(self):
        assert dict(delta((("a",), 2)).negated().items()) == {("a",): -2}

    def test_update_into_empty_copies(self):
        source = delta((("a",), 2), (("b",), -1))
        target = Delta()
        target.update(source)
        assert dict(target.items()) == {("a",): 2, ("b",): -1}
        # the fast path must copy, never alias, the source's storage
        target.add(("a",), -2)
        assert dict(source.items()) == {("a",): 2, ("b",): -1}

    def test_update_merges_and_cancels(self):
        target = delta((("a",), 1))
        target.update(delta((("a",), -1), (("b",), 3)))
        assert dict(target.items()) == {("b",): 3}


class TestSelection:
    def test_filters_both_signs(self):
        schema = value_schema("x")
        node = SelectionNode(schema, compile_expr(parse_expression("x > 2"), schema), CTX)
        sink = Sink()
        node.subscribe(sink)
        node.apply(delta(((1,), 1), ((5,), 2)), LEFT)
        node.apply(delta(((5,), -1)), LEFT)
        assert sink.bag == {(5,): 1}

    def test_unknown_predicate_filters_row(self):
        schema = value_schema("x")
        node = SelectionNode(schema, compile_expr(parse_expression("x > 2"), schema), CTX)
        sink = Sink()
        node.subscribe(sink)
        node.apply(delta(((None,), 1)), LEFT)
        assert sink.bag == {}


class TestProjection:
    def test_maps_and_merges(self):
        schema = value_schema("x")
        node = ProjectionNode(
            Schema([Attribute("y", AttrKind.VALUE)]),
            [compile_expr(parse_expression("x % 2"), schema)],
            CTX,
        )
        sink = Sink()
        node.subscribe(sink)
        node.apply(delta(((1,), 1), ((3,), 1), ((2,), 1)), LEFT)
        assert sink.bag == {(1,): 2, (0,): 1}


class TestDedup:
    def test_emits_only_zero_crossings(self):
        node = DedupNode(value_schema("x"))
        sink = Sink()
        node.subscribe(sink)
        node.apply(delta((("a",), 2)), LEFT)
        assert sink.bag == {("a",): 1}
        node.apply(delta((("a",), -1)), LEFT)
        assert sink.bag == {("a",): 1}  # still one copy upstream
        node.apply(delta((("a",), -1)), LEFT)
        assert sink.bag == {}

    def test_underflow_asserts(self):
        node = DedupNode(value_schema("x"))
        with pytest.raises(AssertionError):
            node.apply(delta((("a",), -1)), LEFT)


class TestUnwind:
    def test_list_expansion(self):
        schema = value_schema("xs")
        node = UnwindNode(
            value_schema("xs", "x"),
            compile_expr(parse_expression("xs"), schema),
            CTX,
        )
        sink = Sink()
        node.subscribe(sink)
        node.apply(delta(((ListValue((1, 2)),), 2)), LEFT)
        assert sink.bag == {(ListValue((1, 2)), 1): 2, (ListValue((1, 2)), 2): 2}

    def test_null_and_scalar(self):
        schema = value_schema("xs")
        node = UnwindNode(
            value_schema("xs", "x"),
            compile_expr(parse_expression("xs"), schema),
            CTX,
        )
        sink = Sink()
        node.subscribe(sink)
        node.apply(delta(((None,), 1), ((7,), 1)), LEFT)
        assert sink.bag == {(7, 7): 1}


def make_join():
    node = JoinNode(value_schema("k", "a", "b"), [0], [0], [1])
    sink = Sink()
    node.subscribe(sink)
    return node, sink


class TestJoin:
    def test_insert_both_sides(self):
        node, sink = make_join()
        node.apply(delta((("k1", "a1"), 1)), LEFT)
        assert sink.bag == {}
        node.apply(delta((("k1", "b1"), 1)), RIGHT)
        assert sink.bag == {("k1", "a1", "b1"): 1}

    def test_multiplicities_multiply(self):
        node, sink = make_join()
        node.apply(delta((("k", "a"), 2)), LEFT)
        node.apply(delta((("k", "b"), 3)), RIGHT)
        assert sink.bag == {("k", "a", "b"): 6}

    def test_retraction_cascades(self):
        node, sink = make_join()
        node.apply(delta((("k", "a"), 1)), LEFT)
        node.apply(delta((("k", "b"), 1)), RIGHT)
        node.apply(delta((("k", "a"), -1)), LEFT)
        assert sink.bag == {}

    def test_memory_size(self):
        node, _ = make_join()
        node.apply(delta((("k", "a"), 1)), LEFT)
        node.apply(delta((("k", "b"), 1)), RIGHT)
        assert node.memory_size() == 2


class TestAntiJoin:
    def make(self):
        node = AntiJoinNode(value_schema("k", "a"), [0], [0])
        sink = Sink()
        node.subscribe(sink)
        return node, sink

    def test_left_passes_without_right(self):
        node, sink = self.make()
        node.apply(delta((("k", "a"), 1)), LEFT)
        assert sink.bag == {("k", "a"): 1}

    def test_right_arrival_retracts(self):
        node, sink = self.make()
        node.apply(delta((("k", "a"), 1)), LEFT)
        node.apply(delta((("k",), 1)), RIGHT)
        assert sink.bag == {}

    def test_right_departure_restores(self):
        node, sink = self.make()
        node.apply(delta((("k", "a"), 1)), LEFT)
        node.apply(delta((("k",), 2)), RIGHT)
        node.apply(delta((("k",), -2)), RIGHT)
        assert sink.bag == {("k", "a"): 1}

    def test_left_blocked_when_right_present(self):
        node, sink = self.make()
        node.apply(delta((("k",), 1)), RIGHT)
        node.apply(delta((("k", "a"), 1)), LEFT)
        assert sink.bag == {}

    def test_memory_cells_counts_both_memories(self):
        node, _ = self.make()
        assert node.memory_cells() == 0
        node.apply(delta((("k", "a"), 1), (("j", "b"), 1)), LEFT)
        node.apply(delta((("k",), 1)), RIGHT)
        # two 2-wide left rows plus one 1-wide right key
        assert node.memory_cells() == 5
        assert node.memory_size() == 3


class TestLeftOuterJoin:
    def make(self):
        node = LeftOuterJoinNode(value_schema("k", "a", "b"), [0], [0], [1])
        node.configure_nulls(1)
        sink = Sink()
        node.subscribe(sink)
        return node, sink

    def test_unmatched_left_padded(self):
        node, sink = self.make()
        node.apply(delta((("k", "a"), 1)), LEFT)
        assert sink.bag == {("k", "a", None): 1}

    def test_right_arrival_swaps_padding_for_match(self):
        node, sink = self.make()
        node.apply(delta((("k", "a"), 1)), LEFT)
        node.apply(delta((("k", "b"), 1)), RIGHT)
        assert sink.bag == {("k", "a", "b"): 1}

    def test_right_departure_restores_padding(self):
        node, sink = self.make()
        node.apply(delta((("k", "a"), 1)), LEFT)
        node.apply(delta((("k", "b"), 1)), RIGHT)
        node.apply(delta((("k", "b"), -1)), RIGHT)
        assert sink.bag == {("k", "a", None): 1}

    def test_matched_left_insert(self):
        node, sink = self.make()
        node.apply(delta((("k", "b"), 1)), RIGHT)
        node.apply(delta((("k", "a"), 1)), LEFT)
        assert sink.bag == {("k", "a", "b"): 1}


class TestUnion:
    def test_permutes_right(self):
        node = UnionNode(value_schema("a", "b"), (1, 0))
        sink = Sink()
        node.subscribe(sink)
        node.apply(delta(((1, 2), 1)), LEFT)
        node.apply(delta(((9, 8), 1)), RIGHT)
        assert sink.bag == {(1, 2): 1, (8, 9): 1}

    def test_identity_permutation_fast_path(self):
        node = UnionNode(value_schema("a", "b"), (0, 1))
        assert node._identity
        sink = Sink()
        node.subscribe(sink)
        node.apply(delta(((1, 2), 1)), LEFT)
        node.apply(delta(((9, 8), 2), ((1, 2), -1)), RIGHT)
        assert sink.bag == {(9, 8): 2}


class TestAggregateNode:
    def make(self, keys, specs, schema_in):
        arg_fns = [
            compile_expr(s.argument, schema_in) if s.argument is not None else None
            for s in specs
        ]
        key_fns = [compile_expr(parse_expression(k), schema_in) for k in keys]
        node = AggregateNode(value_schema("out"), key_fns, specs, arg_fns, CTX)
        sink = Sink()
        node.subscribe(sink)
        return node, sink

    def test_global_count_starts_at_zero(self):
        node, sink = self.make([], [AggregateSpec("count", None, False, "n")], value_schema("x"))
        node.initialize()
        assert sink.bag == {(0,): 1}
        node.apply(delta(((1,), 2)), LEFT)
        assert sink.bag == {(2,): 1}
        node.apply(delta(((1,), -2)), LEFT)
        assert sink.bag == {(0,): 1}

    def test_grouped_sum_appears_and_disappears(self):
        schema = value_schema("g", "v")
        node, sink = self.make(
            ["g"],
            [AggregateSpec("sum", parse_expression("v"), False, "s")],
            schema,
        )
        node.apply(delta((("a", 2), 1), (("a", 3), 1), (("b", 1), 1)), LEFT)
        assert sink.bag == {("a", 5): 1, ("b", 1): 1}
        node.apply(delta((("b", 1), -1)), LEFT)
        assert sink.bag == {("a", 5): 1}

    def test_no_spurious_emission_when_result_unchanged(self):
        schema = value_schema("g", "v")
        node, sink = self.make(
            ["g"],
            [AggregateSpec("min", parse_expression("v"), False, "m")],
            schema,
        )
        node.apply(delta((("a", 1), 1)), LEFT)
        emitted = len(sink.deltas)
        node.apply(delta((("a", 5), 1)), LEFT)  # min unchanged
        assert len(sink.deltas) == emitted  # empty deltas are not delivered


class TestTransitiveClosureNode:
    def make(self, min_hops=1, max_hops=None, emit_path=True, direction="out"):
        schema = Schema(
            [
                Attribute("s", AttrKind.VERTEX),
                Attribute("c", AttrKind.VERTEX),
                Attribute("t", AttrKind.PATH),
            ]
        )
        node = TransitiveClosureNode(schema, 0, direction, min_hops, max_hops, emit_path)
        sink = Sink()
        node.subscribe(sink)
        return node, sink

    def edge(self, s, e, t, sign=1):
        return delta((((s, e, t)), sign))

    def test_left_then_edges(self):
        node, sink = self.make()
        node.apply(delta(((1,), 1)), LEFT)
        node.apply(self.edge(1, 10, 2), EDGES)
        assert sink.bag == {(1, 2, PathValue((1, 2), (10,))): 1}

    def test_edges_then_left(self):
        node, sink = self.make()
        node.apply(self.edge(1, 10, 2), EDGES)
        node.apply(delta(((1,), 1)), LEFT)
        assert sink.bag == {(1, 2, PathValue((1, 2), (10,))): 1}

    def test_transitive_extension(self):
        node, sink = self.make()
        node.apply(delta(((1,), 1)), LEFT)
        node.apply(self.edge(1, 10, 2), EDGES)
        node.apply(self.edge(2, 11, 3), EDGES)
        # trails from source 1: [1,2] and [1,2,3]
        assert sink.bag == {
            (1, 2, PathValue((1, 2), (10,))): 1,
            (1, 3, PathValue((1, 2, 3), (10, 11))): 1,
        }

    def test_bridge_edge_combines_prefix_and_suffix(self):
        node, sink = self.make()
        node.apply(delta(((1,), 1)), LEFT)
        node.apply(self.edge(1, 10, 2), EDGES)
        node.apply(self.edge(3, 12, 4), EDGES)
        node.apply(self.edge(2, 11, 3), EDGES)  # bridges 1→2 and 3→4
        ends = {row[1] for row in sink.bag}
        assert ends == {2, 3, 4}

    def test_edge_deletion_retracts_all_containing_trails(self):
        node, sink = self.make()
        node.apply(delta(((1,), 1)), LEFT)
        node.apply(self.edge(1, 10, 2), EDGES)
        node.apply(self.edge(2, 11, 3), EDGES)
        node.apply(self.edge(1, 10, 2, sign=-1), EDGES)
        assert sink.bag == {}  # both trails contained edge 10 (2→3 unreachable)

    def test_deletion_keeps_independent_trails(self):
        node, sink = self.make()
        node.apply(delta(((1,), 1)), LEFT)
        node.apply(self.edge(1, 10, 2), EDGES)
        node.apply(self.edge(1, 11, 3), EDGES)
        node.apply(self.edge(1, 10, 2, sign=-1), EDGES)
        assert sink.bag == {(1, 3, PathValue((1, 3), (11,))): 1}

    def test_min_hops_filters_output_not_state(self):
        node, sink = self.make(min_hops=2)
        node.apply(delta(((1,), 1)), LEFT)
        node.apply(self.edge(1, 10, 2), EDGES)
        assert sink.bag == {}
        node.apply(self.edge(2, 11, 3), EDGES)
        assert sink.bag == {(1, 3, PathValue((1, 2, 3), (10, 11))): 1}

    def test_max_hops_caps_trails(self):
        node, sink = self.make(max_hops=1)
        node.apply(delta(((1,), 1)), LEFT)
        node.apply(self.edge(1, 10, 2), EDGES)
        node.apply(self.edge(2, 11, 3), EDGES)
        assert len(sink.bag) == 1

    def test_zero_hops_emitted_per_left_row(self):
        node, sink = self.make(min_hops=0)
        node.apply(delta(((1,), 1)), LEFT)
        assert sink.bag == {(1, 1, PathValue((1,), ())): 1}

    def test_cycle_generates_finite_trails(self):
        node, sink = self.make()
        node.apply(delta(((1,), 1)), LEFT)
        node.apply(self.edge(1, 10, 2), EDGES)
        node.apply(self.edge(2, 11, 1), EDGES)
        # trails from 1: [1,2] and [1,2,1] — edge-distinctness terminates it
        assert len(sink.bag) == 2

    def test_left_retraction(self):
        node, sink = self.make()
        node.apply(delta(((1,), 1)), LEFT)
        node.apply(self.edge(1, 10, 2), EDGES)
        node.apply(delta(((1,), -1)), LEFT)
        assert sink.bag == {}

    def test_left_multiplicity_scales_output(self):
        node, sink = self.make()
        node.apply(delta(((1,), 2)), LEFT)
        node.apply(self.edge(1, 10, 2), EDGES)
        assert sink.bag == {(1, 2, PathValue((1, 2), (10,))): 2}

    def test_direction_in(self):
        node, sink = self.make(direction="in")
        node.apply(delta(((2,), 1)), LEFT)
        node.apply(self.edge(1, 10, 2), EDGES)  # canonical 1→2, traverse 2→1
        assert sink.bag == {(2, 1, PathValue((2, 1), (10,))): 1}

    def test_direction_both_self_loop_single_arc(self):
        node, sink = self.make(direction="both")
        node.apply(delta(((1,), 1)), LEFT)
        node.apply(self.edge(1, 10, 1), EDGES)
        assert sink.bag == {(1, 1, PathValue((1, 1), (10,))): 1}

    def test_null_source_ignored(self):
        node, sink = self.make(min_hops=0)
        node.apply(delta(((None,), 1)), LEFT)
        assert sink.bag == {}
