"""Differential suite: interest-routed dispatch vs. the broadcast oracle.

Two engines over two initially identical graphs — one with
``route_events=True``, one with ``route_events=False`` — receive the same
view registrations and the same random event stream.  Routing is a pure
candidate-set reduction, so after every operation the two sides must hold
identical view multisets and have fired identical ``on_change`` delta
sequences; periodically both are additionally checked against one-shot
re-evaluation (the paper's IVM property).
"""

import random

import pytest

from repro import PropertyGraph, QueryEngine
from repro.errors import GraphError

LABELS = ("Post", "Comm", "Person", "Tag")
EDGE_TYPES = ("REPLY", "LIKES", "KNOWS")
VERTEX_KEYS = ("lang", "score", "name")
EDGE_KEYS = ("weight", "since")
VALUES = ("en", "de", "hu", 1, 2, 5, None)

#: one query per routing bucket family: labelled / unlabelled vertices,
#: labels() and properties() wildcards, typed / untyped edges, endpoint
#: labels, endpoint and edge property columns, aggregation on top
QUERIES = (
    "MATCH (p:Post) RETURN p, p.lang",
    "MATCH (n) RETURN n",
    "MATCH (n:Post) RETURN labels(n)",
    "MATCH (p:Post)-[r:REPLY]->(c:Comm) RETURN p, c, c.lang",
    "MATCH (a)-[r:LIKES]->(b) RETURN a, b",
    "MATCH (a)-[r]->(b) RETURN a, b, r.weight",
    "MATCH (a:Person)-[r:KNOWS]->(b:Person) WHERE a.score > b.score RETURN a, b",
    "MATCH (n:Comm) RETURN n.lang AS lang, count(*) AS c",
    "MATCH (a)-[r:LIKES]->(b) RETURN a, type(r), properties(b)",
)


class _Abort(Exception):
    pass


class MirrorPair:
    """A routed engine and a broadcast engine fed identical histories."""

    def __init__(self, batch_transactions: bool = False):
        self.graphs = (PropertyGraph(), PropertyGraph())
        self.engines = (
            QueryEngine(
                self.graphs[0],
                route_events=True,
                batch_transactions=batch_transactions,
            ),
            QueryEngine(
                self.graphs[1],
                route_events=False,
                batch_transactions=batch_transactions,
            ),
        )
        self.queries: list[str] = []
        self.views: list[tuple] = []
        self.logs: list[tuple[list, list]] = []

    def register(self, query: str) -> None:
        pair, logs = [], []
        for engine in self.engines:
            view = engine.register(query)
            log: list = []
            view.on_change(log.append)
            pair.append(view)
            logs.append(log)
        self.queries.append(query)
        self.views.append(tuple(pair))
        self.logs.append(tuple(logs))

    def apply(self, op) -> None:
        for graph in self.graphs:
            op(graph)

    def assert_consistent(self, oracle: bool = False) -> None:
        for query, (routed, broadcast) in zip(self.queries, self.views):
            assert routed.multiset() == broadcast.multiset(), query
            if oracle:
                assert (
                    routed.multiset()
                    == self.engines[0].evaluate(query, use_views=False).multiset()
                ), query
        for query, (routed_log, broadcast_log) in zip(self.queries, self.logs):
            assert routed_log == broadcast_log, query


def _random_op(rng: random.Random, vertices: list[int], edges: list[int]):
    """One parameterised mutation, applicable to any identical graph."""
    roll = rng.random()
    if roll < 0.22 or not vertices:
        labels = rng.sample(LABELS, rng.randint(0, 2))
        props = {
            key: rng.choice(VALUES)
            for key in rng.sample(VERTEX_KEYS, rng.randint(0, 2))
        }
        return lambda g: g.add_vertex(labels=labels, properties=props)
    if roll < 0.40:
        src, tgt = rng.choice(vertices), rng.choice(vertices)
        edge_type = rng.choice(EDGE_TYPES)
        props = {rng.choice(EDGE_KEYS): rng.choice(VALUES)}
        return lambda g: g.add_edge(src, tgt, edge_type, properties=props)
    if roll < 0.55:
        vertex, key = rng.choice(vertices), rng.choice(VERTEX_KEYS)
        value = rng.choice(VALUES)
        return lambda g: g.set_vertex_property(vertex, key, value)
    if roll < 0.65:
        vertex, label = rng.choice(vertices), rng.choice(LABELS)
        if rng.random() < 0.5:
            return lambda g: g.add_label(vertex, label)
        return lambda g: g.remove_label(vertex, label)
    if roll < 0.78 and edges:
        edge, key = rng.choice(edges), rng.choice(EDGE_KEYS)
        value = rng.choice(VALUES)
        return lambda g: g.set_edge_property(edge, key, value)
    if roll < 0.88 and edges:
        edge = rng.choice(edges)
        return lambda g: g.remove_edge(edge)
    vertex = rng.choice(vertices)
    return lambda g: g.remove_vertex(vertex, detach=True)


def _drive(pair: MirrorPair, rng: random.Random, operations: int) -> None:
    """Apply a random stream, checking consistency continuously."""
    for step in range(operations):
        vertices = list(pair.graphs[0].vertices())
        edges = list(pair.graphs[0].edges())
        if rng.random() < 0.08:
            # a transaction that aborts: compensation events must replay
            # identically through both dispatchers
            ops = [
                _random_op(rng, vertices, edges) for _ in range(rng.randint(1, 4))
            ]

            def aborted(graph, ops=ops):
                try:
                    with graph.transaction():
                        for op in ops:
                            op(graph)
                        raise _Abort()
                except (_Abort, GraphError):
                    # a mid-transaction graph error rolls back too, and does
                    # so deterministically on both sides
                    pass

            pair.apply(aborted)
        else:
            pair.apply(_random_op(rng, vertices, edges))
        pair.assert_consistent(oracle=step % 25 == 0)
    pair.assert_consistent(oracle=True)


@pytest.mark.parametrize("seed", range(5))
def test_random_stream_matches_broadcast(seed):
    pair = MirrorPair()
    for query in QUERIES:
        pair.register(query)
    _drive(pair, random.Random(seed), operations=80)


@pytest.mark.parametrize("seed", range(3))
def test_batched_transactions_match_broadcast(seed):
    """Committed and rolled-back transactions under batch_transactions."""
    rng = random.Random(1000 + seed)
    pair = MirrorPair(batch_transactions=True)
    for query in QUERIES:
        pair.register(query)
    for _ in range(25):
        vertices = list(pair.graphs[0].vertices())
        edges = list(pair.graphs[0].edges())
        ops = [
            _random_op(rng, vertices, edges) for _ in range(rng.randint(1, 5))
        ]
        if rng.random() < 0.3:

            def aborted(graph, ops=ops):
                try:
                    with graph.transaction():
                        for op in ops:
                            op(graph)
                        raise _Abort()
                except (_Abort, GraphError):
                    # a mid-transaction graph error rolls back too, and does
                    # so deterministically on both sides
                    pass

            pair.apply(aborted)
        else:

            def committed(graph, ops=ops):
                try:
                    with graph.transaction():
                        for op in ops:
                            op(graph)
                except GraphError:
                    pass

            pair.apply(committed)
        pair.assert_consistent(oracle=True)


def test_mid_batch_register_matches_broadcast():
    """A view joining inside an open batch flushes pending work first."""
    rng = random.Random(7)
    pair = MirrorPair()
    for query in QUERIES[:4]:
        pair.register(query)
    for graph in pair.graphs:
        post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        comm = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        graph.add_edge(post, comm, "REPLY")
    pair.assert_consistent(oracle=True)

    scopes = [engine.batch() for engine in pair.engines]
    for scope in scopes:
        scope.__enter__()
    try:
        for _ in range(10):
            vertices = list(pair.graphs[0].vertices())
            edges = list(pair.graphs[0].edges())
            pair.apply(_random_op(rng, vertices, edges))
        for query in QUERIES[4:]:
            pair.register(query)
        for _ in range(10):
            vertices = list(pair.graphs[0].vertices())
            edges = list(pair.graphs[0].edges())
            pair.apply(_random_op(rng, vertices, edges))
    finally:
        for scope in scopes:
            scope.__exit__(None, None, None)
    pair.assert_consistent(oracle=True)


def test_detach_withdraws_interests():
    """Pruned shared input nodes stop receiving routed events entirely."""
    graph = PropertyGraph()
    engine = QueryEngine(graph, route_events=True, detached_cache_size=0)
    view = engine.register("MATCH (p:Post) RETURN p")
    keeper = engine.register("MATCH (c:Comm) RETURN c")
    router = engine._incremental.input_layer.router
    assert len(router) == 2
    assert "Post" in router._v_membership.keyed
    view.detach()
    assert len(router) == 1
    # emptied keyed buckets are deleted, not left behind as dead keys
    assert "Post" not in router._v_membership.keyed
    post = graph.add_vertex(labels=["Post"])  # routed nowhere, must not raise
    graph.add_vertex(labels=["Comm"])
    graph.remove_vertex(post)
    assert keeper.multiset() == engine.evaluate("MATCH (c:Comm) RETURN c", use_views=False).multiset()


def test_private_layer_routes_too():
    """share_inputs=False networks route through their own router."""
    pair_kwargs = dict(share_inputs=False)
    graphs = (PropertyGraph(), PropertyGraph())
    routed = QueryEngine(graphs[0], route_events=True, **pair_kwargs)
    broadcast = QueryEngine(graphs[1], route_events=False, **pair_kwargs)
    views = [
        (routed.register(q), broadcast.register(q)) for q in QUERIES[:6]
    ]
    rng = random.Random(42)
    for _ in range(60):
        vertices = list(graphs[0].vertices())
        edges = list(graphs[0].edges())
        op = _random_op(rng, vertices, edges)
        for graph in graphs:
            op(graph)
        for r, b in views:
            assert r.multiset() == b.multiset()


def test_routing_is_default_and_selectable():
    graph = PropertyGraph()
    assert QueryEngine(graph)._incremental.input_layer.router is not None
    assert (
        QueryEngine(PropertyGraph(), route_events=False)
        ._incremental.input_layer.router
        is None
    )
