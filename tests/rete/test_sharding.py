"""Sharded maintenance tier: differential oracle against the in-process engine.

``workers=N`` moves every view onto forked worker processes — replicated
graphs, interest-sliced batch fan-out, merged ``on_change`` streams.  All
of that must be *invisible*: the mirror classes here drive identical
random streams through a sharded engine (≥3 workers) and its ``workers=0``
in-process baseline (the exact PR 1–6 path) and require identical per-view
contents and net change deltas throughout — across every flag combo of
``columnar_deltas`` × ``share_across_bindings``, batched windows, rollback
transactions, and mid-stream register/detach with live view migration.
Mechanics classes pin the tier itself: shard-key placement, conservative
batch splitting, the ``state_delta`` hand-off parity check, aggregated
``shard_stats``, and the coordinator lifecycle.
"""

import random

import pytest

from repro import PropertyGraph, QueryEngine
from repro.errors import GraphError, ShardError
from repro.rete.deltas import Delta
from repro.rete.engine import IncrementalEngine
from repro.rete.shard import ShardCoordinator, ShardView, shard_index

from .test_columnar import LANGS, PARAM_QUERIES, QUERIES, _columnar_op, oracle
from .test_sharing import _Abort

WORKERS = 3

#: every combination the satellite demands: the columnar representation and
#: the binding tier must both compose with process sharding
FLAG_COMBOS = [
    {"columnar_deltas": True, "share_across_bindings": True},
    {"columnar_deltas": True, "share_across_bindings": False},
    {"columnar_deltas": False, "share_across_bindings": True},
    {"columnar_deltas": False, "share_across_bindings": False},
]
_COMBO_IDS = [
    ",".join(f"{k.split('_')[0]}={int(v)}" for k, v in combo.items())
    for combo in FLAG_COMBOS
]


def _merged(deltas) -> Delta:
    total = Delta()
    for delta in deltas:
        total.update(delta)
    return total


class ShardMirrorPair:
    """A sharded engine and its in-process baseline, fed identically.

    Change logs are compared as *net deltas per step*: the sharded tier
    coalesces each elementary event into a (one-record) batch, so a single
    event touching two input signatures of one view fires once with the
    merged delta where the per-event baseline may fire twice — identical
    net effect, different granularity.
    """

    def __init__(self, workers: int = WORKERS, **flags):
        self.graphs = (PropertyGraph(), PropertyGraph())
        self.engines = (
            QueryEngine(self.graphs[0], workers=workers, **flags),
            QueryEngine(self.graphs[1], **flags),
        )
        self.registered: list[tuple[str, dict | None]] = []
        self.views: list[tuple] = []
        self.logs: list[tuple] = []

    @property
    def coordinator(self) -> ShardCoordinator:
        return self.engines[0]._incremental

    def close(self) -> None:
        self.engines[0].shutdown()

    def register(self, query: str, parameters=None) -> None:
        pair, logs = [], []
        for engine in self.engines:
            view = engine.register(query, parameters=parameters)
            log: list = []
            view.on_change(log.append)
            pair.append(view)
            logs.append(log)
        self.registered.append((query, parameters))
        self.views.append(tuple(pair))
        self.logs.append(tuple(logs))

    def register_all(self) -> None:
        for query in QUERIES:
            self.register(query)
        for query, names in PARAM_QUERIES:
            for lang in LANGS[:3]:
                binding = {"lang": lang}
                if "score" in names:
                    binding["score"] = 1
                self.register(query, binding)

    def detach(self, index: int) -> None:
        for view in self.views.pop(index):
            view.detach()
        self.registered.pop(index)
        self.logs.pop(index)

    def apply(self, op) -> None:
        for graph in self.graphs:
            op(graph)

    def apply_window(self, ops) -> None:
        for engine, graph in zip(self.engines, self.graphs):
            with engine.batch():
                for op in ops:
                    op(graph)

    def assert_consistent(self, use_oracle: bool = False) -> None:
        for (query, parameters), (sharded, baseline) in zip(
            self.registered, self.views
        ):
            assert sharded.multiset() == baseline.multiset(), (query, parameters)
            if use_oracle:
                assert sharded.multiset() == oracle(
                    self.graphs[0], query, parameters
                ), (query, parameters)
        for (query, parameters), (sharded_log, baseline_log) in zip(
            self.registered, self.logs
        ):
            assert _merged(sharded_log) == _merged(baseline_log), (
                query,
                parameters,
            )
            sharded_log.clear()
            baseline_log.clear()


def _drive(pair, rng, operations=40, rollback_chance=0.08, oracle_every=10):
    for step in range(operations):
        vertices = list(pair.graphs[0].vertices())
        edges = list(pair.graphs[0].edges())
        if rng.random() < rollback_chance:
            ops = [
                _columnar_op(rng, vertices, edges)
                for _ in range(rng.randint(1, 4))
            ]

            def aborted(graph, ops=ops):
                try:
                    with graph.transaction():
                        for op in ops:
                            op(graph)
                        raise _Abort()
                except (_Abort, GraphError):
                    pass

            pair.apply(aborted)
        else:
            pair.apply(_columnar_op(rng, vertices, edges))
        pair.assert_consistent(use_oracle=step % oracle_every == 0)
    pair.assert_consistent(use_oracle=True)


class TestShardedDifferential:
    @pytest.mark.parametrize("flags", FLAG_COMBOS, ids=_COMBO_IDS)
    def test_random_stream_matches_in_process(self, flags):
        """Per-event mode across every columnar × binding-sharing combo."""
        pair = ShardMirrorPair(**flags)
        try:
            pair.register_all()
            _drive(pair, random.Random(500), operations=30)
        finally:
            pair.close()

    @pytest.mark.parametrize("flags", FLAG_COMBOS, ids=_COMBO_IDS)
    def test_batched_windows_match_in_process(self, flags):
        """engine.batch() windows fan out as one net batch per window."""
        rng = random.Random(600)
        pair = ShardMirrorPair(**flags)
        try:
            pair.register_all()
            for _ in range(10):
                vertices = list(pair.graphs[0].vertices())
                edges = list(pair.graphs[0].edges())
                pair.apply_window(
                    [
                        _columnar_op(rng, vertices, edges)
                        for _ in range(rng.randint(1, 5))
                    ]
                )
                pair.assert_consistent(use_oracle=True)
        finally:
            pair.close()

    @pytest.mark.parametrize("seed", range(2))
    def test_rollback_transactions_leave_views_silent(self, seed):
        """batch_transactions: rollbacks net to zero before the fan-out."""
        rng = random.Random(700 + seed)
        pair = ShardMirrorPair(batch_transactions=True)
        try:
            pair.register_all()
            for _ in range(15):
                vertices = list(pair.graphs[0].vertices())
                edges = list(pair.graphs[0].edges())
                ops = [
                    _columnar_op(rng, vertices, edges)
                    for _ in range(rng.randint(1, 5))
                ]
                abort = rng.random() < 0.4

                def run(graph, ops=ops, abort=abort):
                    try:
                        with graph.transaction():
                            for op in ops:
                                op(graph)
                            if abort:
                                raise _Abort()
                    except (_Abort, GraphError):
                        pass

                before = [pair.views[i][0].multiset() for i in range(len(pair.views))]
                pair.apply(run)
                if abort:
                    # views untouched and callbacks silent on both engines
                    for i, view_pair in enumerate(pair.views):
                        assert view_pair[0].multiset() == before[i]
                    for sharded_log, baseline_log in pair.logs:
                        assert sharded_log == [] and baseline_log == []
                pair.assert_consistent(use_oracle=True)
        finally:
            pair.close()

    @pytest.mark.parametrize("seed", range(2))
    def test_mid_stream_register_detach_and_migration(self, seed):
        """Live lifecycle churn: late joiners, detaches, and migrations."""
        rng = random.Random(800 + seed)
        pair = ShardMirrorPair()
        try:
            pair.register(QUERIES[2])
            pool = [(query, None) for query in QUERIES] + [
                (query, {"lang": lang, **({"score": 1} if "score" in names else {})})
                for query, names in PARAM_QUERIES
                for lang in LANGS[:3]
            ]
            for step in range(40):
                vertices = list(pair.graphs[0].vertices())
                edges = list(pair.graphs[0].edges())
                roll = rng.random()
                if roll < 0.15:
                    query, parameters = pool[rng.randrange(len(pool))]
                    pair.register(query, parameters)
                elif roll < 0.25 and len(pair.views) > 1:
                    pair.detach(rng.randrange(len(pair.views)))
                elif roll < 0.35 and pair.views:
                    # live migration: the sharded view moves workers, the
                    # baseline twin stays put — results must stay identical
                    view = pair.views[rng.randrange(len(pair.views))][0]
                    target = rng.randrange(pair.coordinator.worker_count)
                    pair.coordinator.migrate_view(view, target)
                else:
                    pair.apply(_columnar_op(rng, vertices, edges))
                pair.assert_consistent(use_oracle=step % 10 == 0)
            pair.coordinator.rebalance()
            counts = [0] * pair.coordinator.worker_count
            for view_pair in pair.views:
                counts[view_pair[0].worker_index] += 1
            assert max(counts) - min(counts) <= 1
            pair.assert_consistent(use_oracle=True)
        finally:
            pair.close()

    def test_register_inside_open_batch_window(self):
        """A view joining mid-batch flushes the window to the shards first."""
        pair = ShardMirrorPair()
        try:
            pair.register(QUERIES[0])
            for engine, graph in zip(pair.engines, pair.graphs):
                with engine.batch():
                    graph.add_vertex(labels=["Post"], properties={"lang": "en"})
                    view = engine.register(QUERIES[1])
                    assert view.multiset() == {(1,): 1}
                    graph.set_vertex_property(1, "lang", "de")
            pair.register(QUERIES[1])  # adopt post-hoc for final comparison
            pair.assert_consistent(use_oracle=True)
        finally:
            pair.close()

    def test_callbacks_fire_in_registration_order(self):
        """The merge point preserves per-view notification order."""
        pair = ShardMirrorPair(batch_transactions=False)
        try:
            orders: tuple[list, list] = ([], [])
            for query in QUERIES[:4]:
                for which, engine in enumerate(pair.engines):
                    view = engine.register(query)
                    view.on_change(
                        lambda delta, q=query, w=which: orders[w].append(q)
                    )
            ops = []
            with pair.engines[0].batch(), pair.engines[1].batch():
                for graph in pair.graphs:
                    post = graph.add_vertex(
                        labels=["Post"], properties={"lang": "en"}
                    )
                    comm = graph.add_vertex(
                        labels=["Comm"], properties={"lang": "en"}
                    )
                    graph.add_edge(post, comm, "REPLY")
            assert orders[0] == orders[1]
            assert orders[0] == [q for q in QUERIES[:4]]
        finally:
            pair.close()


class TestShardMechanics:
    def test_workers_zero_is_the_plain_engine(self):
        """The ablation path: no coordinator, no behaviour change."""
        engine = QueryEngine(PropertyGraph())
        assert type(engine._incremental) is IncrementalEngine
        assert engine.catalog is not None
        # shard_stats answers the same shape as the sharded tier, with an
        # empty worker list and zeroed fan-out counters
        stats = engine.shard_stats()
        assert stats["workers"] == []
        assert stats["views"] == 0
        assert stats["coordinator"] == {
            "batches_fanned_out": 0,
            "records_fanned_out": 0,
            "records_sliced_away": 0,
        }
        assert stats["totals"]["memory_size"] == 0
        assert "sharing" in stats["totals"]
        engine.shutdown()  # no-op without workers

    def test_sharded_engine_disables_view_answering(self):
        engine = QueryEngine(PropertyGraph(), workers=2)
        try:
            assert isinstance(engine._incremental, ShardCoordinator)
            assert engine.catalog is None
            assert not engine.answer_from_views
            assert engine.answer_stats().queries == 0
            assert "disabled" in engine.explain("MATCH (p:Post) RETURN p")
        finally:
            engine.shutdown()

    def test_same_signature_views_colocate(self):
        """The shard key is signature-determined: same inputs, same worker."""
        engine = QueryEngine(PropertyGraph(), workers=WORKERS)
        try:
            first = engine.register("MATCH (p:Post) WHERE p.lang = 'en' RETURN p")
            second = engine.register("MATCH (p:Post) WHERE p.lang = 'de' RETURN p")
            bound = engine.register(
                "MATCH (p:Post) WHERE p.lang = $lang RETURN p", {"lang": "en"}
            )
            other = engine.register(
                "MATCH (p:Post) WHERE p.lang = $lang RETURN p", {"lang": "de"}
            )
            assert first.worker_index == second.worker_index
            assert bound.worker_index == other.worker_index
            for view in (first, second, bound, other):
                assert view.worker_index == shard_index(
                    view.compiled.plan, WORKERS
                )
        finally:
            engine.shutdown()

    def test_distinct_signatures_spread_across_workers(self):
        engine = QueryEngine(PropertyGraph(), workers=WORKERS)
        try:
            for i in range(12):
                engine.register(f"MATCH (n:L{i}) RETURN n")
            occupied = {view.worker_index for view in engine.views}
            assert len(occupied) == WORKERS
        finally:
            engine.shutdown()

    def test_batch_splitting_slices_irrelevant_records(self):
        """Churn outside every view's interest never reaches worker Rete."""
        graph = PropertyGraph()
        engine = QueryEngine(graph, workers=2)
        try:
            view = engine.register("MATCH (p:Post) RETURN p")
            with engine.batch():
                post = graph.add_vertex(labels=["Post"])
                for _ in range(5):
                    graph.add_vertex(labels=["Unwatched"])
            stats = engine.shard_stats()
            assert stats["coordinator"]["records_sliced_away"] > 0
            assert view.multiset() == {(post,): 1}
            # the replica still applied everything it sliced away
            late = engine.register("MATCH (u:Unwatched) RETURN u")
            assert sum(late.multiset().values()) == 5
        finally:
            engine.shutdown()

    def test_migration_guards(self):
        graph = PropertyGraph()
        engine = QueryEngine(graph, workers=2)
        coordinator = engine._incremental
        try:
            view = engine.register("MATCH (p:Post) RETURN p")
            assert coordinator.migrate_view(view, view.worker_index) is view
            with pytest.raises(ShardError):
                coordinator.migrate_view(view, 99)
            with engine.batch():
                graph.add_vertex(labels=["Post"])
                with pytest.raises(ShardError):
                    coordinator.migrate_view(view, 1 - view.worker_index)
            detached = engine.register("MATCH (c:Comm) RETURN c")
            detached.detach()
            with pytest.raises(ShardError):
                coordinator.migrate_view(detached, 0)
        finally:
            engine.shutdown()

    def test_shard_stats_aggregate_per_worker_memory(self):
        """profile() stays truthful under workers=N: the aggregate equals
        the sum of the per-worker process-local counters."""
        graph = PropertyGraph()
        engine = QueryEngine(graph, workers=WORKERS)
        try:
            for i, query in enumerate(QUERIES[:4]):
                engine.register(query)
            graph.add_vertex(labels=["Post"], properties={"lang": "en"})
            stats = engine.shard_stats()
            assert len(stats["workers"]) == WORKERS
            assert stats["views"] == 4
            assert stats["totals"]["views"] == 4
            per_worker_cells = sum(w["memory_cells"] for w in stats["workers"])
            assert stats["totals"]["memory_cells"] == per_worker_cells
            assert engine.memory_cells() == per_worker_cells
            assert stats["totals"]["sharing"]["vertex_requests"] >= 1
            view = engine.views[0]
            assert view.memory_cells() >= 1
            assert "Production" in view.profile()
        finally:
            engine.shutdown()

    def test_shutdown_is_idempotent_and_final(self):
        graph = PropertyGraph()
        engine = QueryEngine(graph, workers=2)
        engine.register("MATCH (p:Post) RETURN p")
        engine.shutdown()
        engine.shutdown()
        # the coordinator unhooked from the graph: mutations no longer fan out
        graph.add_vertex(labels=["Post"])
        with pytest.raises(ShardError):
            engine.register("MATCH (c:Comm) RETURN c")

    def test_worker_failure_surfaces_as_shard_error(self):
        engine = QueryEngine(PropertyGraph(), workers=2)
        try:
            view = engine.register("MATCH (p:Post) RETURN p")
            handle = engine._incremental._workers[view.worker_index]
            with pytest.raises(ShardError, match="failed"):
                handle.request(("no-such-message",))
        finally:
            engine.shutdown()

    def test_coordinator_rejects_zero_workers(self):
        with pytest.raises(ShardError):
            ShardCoordinator(PropertyGraph(), workers=0)

    def test_shard_view_surface(self):
        """ShardView mirrors the View API the rest of the stack expects."""
        graph = PropertyGraph()
        engine = QueryEngine(graph, workers=2)
        try:
            post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
            view = engine.register("MATCH (p:Post) RETURN p.lang AS lang")
            assert isinstance(view, ShardView)
            assert view.columns == ("lang",)
            assert view.rows() == [("en",)]
            assert view.result_table().rows() == [("en",)]
            assert view.multiset() == {("en",): 1}
            assert view.memory_size() >= 1
            graph.set_vertex_property(post, "lang", "de")
            assert view.rows() == [("de",)]
        finally:
            engine.shutdown()
