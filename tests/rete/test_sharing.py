"""Cross-view input sharing: transparency, late joiners, detach, stats."""

import pytest

from repro import PropertyGraph, QueryEngine
from repro.rete.engine import IncrementalEngine
from repro.workloads.social import generate_social

QUERIES = [
    "MATCH (p:Post) RETURN p.lang AS lang",
    "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
]


def small_graph():
    graph = PropertyGraph()
    p1 = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
    p2 = graph.add_vertex(labels=["Post"], properties={"lang": "de"})
    c1 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    graph.add_edge(p1, c1, "REPLY")
    return graph, p1, p2, c1


class TestTransparency:
    @pytest.mark.parametrize("share", [True, False])
    def test_rows_identical_under_both_modes(self, share):
        graph, *_ = small_graph()
        engine = IncrementalEngine(graph, share_inputs=share)
        views = [engine.register(q) for q in QUERIES]
        snapshots = [sorted(v.rows(), key=repr) for v in views]
        other = IncrementalEngine(small_graph()[0], share_inputs=not share)
        for view, query, snapshot in zip(
            [other.register(q) for q in QUERIES], QUERIES, snapshots
        ):
            assert sorted(view.rows(), key=repr) == snapshot

    def test_updates_propagate_identically(self):
        results = {}
        for share in (True, False):
            graph, p1, p2, c1 = small_graph()
            engine = IncrementalEngine(graph, share_inputs=share)
            views = [engine.register(q) for q in QUERIES]
            c2 = graph.add_vertex(labels=["Comm"], properties={"lang": "de"})
            graph.add_edge(p2, c2, "REPLY")
            graph.set_vertex_property(c1, "lang", "hu")
            graph.remove_edge(next(iter(graph.edges("REPLY"))))
            results[share] = [sorted(v.rows(), key=repr) for v in views]
        assert results[True] == results[False]

    def test_differential_on_social_workload(self):
        bundle = generate_social(persons=8, posts_per_person=2, seed=7)
        graph = bundle.graph
        engine = QueryEngine(graph, share_inputs=True)
        views = [engine.register(q) for q in QUERIES]
        post = next(iter(graph.vertices("Post")))
        graph.set_vertex_property(post, "lang", "zz")
        for query, view in zip(QUERIES, views):
            assert sorted(view.rows(), key=repr) == sorted(
                engine.evaluate(query).rows(), key=repr
            )


class TestSharingMechanics:
    def test_identical_views_share_all_inputs(self):
        graph, *_ = small_graph()
        engine = IncrementalEngine(graph, share_inputs=True)
        engine.register(QUERIES[2])
        stats_after_first = engine.input_layer.stats.nodes
        engine.register(QUERIES[2])
        assert engine.input_layer.stats.nodes == stats_after_first
        assert engine.input_layer.stats.requests > engine.input_layer.stats.nodes

    def test_late_view_sees_current_state_once(self):
        graph, p1, p2, c1 = small_graph()
        engine = IncrementalEngine(graph, share_inputs=True)
        first = engine.register(QUERIES[0])
        # register the same query again after the layer is already live
        second = engine.register(QUERIES[0])
        assert sorted(second.rows()) == sorted(first.rows())
        assert second.multiset() == first.multiset()  # no double counting

    def test_late_view_tracks_subsequent_updates(self):
        graph, p1, *_ = small_graph()
        engine = IncrementalEngine(graph, share_inputs=True)
        engine.register(QUERIES[0])
        late = engine.register(QUERIES[1])
        graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        assert dict(late.rows()) == {"en": 2, "de": 1}

    def test_detach_stops_updates_and_prunes(self):
        graph, *_ = small_graph()
        engine = IncrementalEngine(graph, share_inputs=True)
        view_a = engine.register(QUERIES[0])
        view_b = engine.register(QUERIES[2])
        assert engine.input_layer.node_count > 0
        view_b.detach()
        view_a.detach()
        assert engine.input_layer.node_count == 0
        # events after detach are harmless
        graph.add_vertex(labels=["Post"], properties={"lang": "xx"})

    def test_detach_leaves_other_views_live(self):
        graph, *_ = small_graph()
        engine = IncrementalEngine(graph, share_inputs=True)
        doomed = engine.register(QUERIES[0])
        survivor = engine.register(QUERIES[0])
        doomed.detach()
        graph.add_vertex(labels=["Post"], properties={"lang": "fr"})
        assert ("fr",) in survivor.rows()

    def test_unshared_engine_has_no_layer(self):
        graph, *_ = small_graph()
        engine = IncrementalEngine(graph, share_inputs=False)
        engine.register(QUERIES[0])
        assert engine.input_layer is None

    def test_write_queries_drive_shared_views(self):
        graph = PropertyGraph()
        engine = QueryEngine(graph, share_inputs=True)
        view_a = engine.register(QUERIES[0])
        view_b = engine.register(QUERIES[3])
        engine.execute(
            "CREATE (p:Post {lang: 'en'})-[:REPLY]->(c:Comm {lang: 'en'})"
        )
        assert view_a.rows() == [("en",)]
        assert len(view_b.rows()) == 1
