"""Cross-view sharing: transparency, late joiners, detach, stats.

Covers both tiers — the input layer (E11) and the subplan layer: the
differential classes drive identical random streams through a
``share_subplans=True`` engine and its input-only baseline and require
identical view contents throughout, including rollback transactions,
batched mode, and mid-stream register/detach.
"""

import random

import pytest

from repro import PropertyGraph, QueryEngine
from repro.errors import GraphError
from repro.rete.engine import IncrementalEngine
from repro.rete.sharing import SharedSubplanLayer
from repro.workloads.social import generate_social

QUERIES = [
    "MATCH (p:Post) RETURN p.lang AS lang",
    "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
]


def small_graph():
    graph = PropertyGraph()
    p1 = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
    p2 = graph.add_vertex(labels=["Post"], properties={"lang": "de"})
    c1 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    graph.add_edge(p1, c1, "REPLY")
    return graph, p1, p2, c1


class TestTransparency:
    @pytest.mark.parametrize("share", [True, False])
    def test_rows_identical_under_both_modes(self, share):
        graph, *_ = small_graph()
        engine = IncrementalEngine(graph, share_inputs=share)
        views = [engine.register(q) for q in QUERIES]
        snapshots = [sorted(v.rows(), key=repr) for v in views]
        other = IncrementalEngine(small_graph()[0], share_inputs=not share)
        for view, query, snapshot in zip(
            [other.register(q) for q in QUERIES], QUERIES, snapshots
        ):
            assert sorted(view.rows(), key=repr) == snapshot

    def test_updates_propagate_identically(self):
        results = {}
        for share in (True, False):
            graph, p1, p2, c1 = small_graph()
            engine = IncrementalEngine(graph, share_inputs=share)
            views = [engine.register(q) for q in QUERIES]
            c2 = graph.add_vertex(labels=["Comm"], properties={"lang": "de"})
            graph.add_edge(p2, c2, "REPLY")
            graph.set_vertex_property(c1, "lang", "hu")
            graph.remove_edge(next(iter(graph.edges("REPLY"))))
            results[share] = [sorted(v.rows(), key=repr) for v in views]
        assert results[True] == results[False]

    def test_differential_on_social_workload(self):
        bundle = generate_social(persons=8, posts_per_person=2, seed=7)
        graph = bundle.graph
        engine = QueryEngine(graph, share_inputs=True)
        views = [engine.register(q) for q in QUERIES]
        post = next(iter(graph.vertices("Post")))
        graph.set_vertex_property(post, "lang", "zz")
        for query, view in zip(QUERIES, views):
            assert sorted(view.rows(), key=repr) == sorted(
                engine.evaluate(query, use_views=False).rows(), key=repr
            )


class TestSharingMechanics:
    def test_identical_views_share_all_inputs(self):
        graph, *_ = small_graph()
        engine = IncrementalEngine(graph, share_inputs=True, share_subplans=False)
        engine.register(QUERIES[2])
        stats_after_first = engine.input_layer.stats.nodes
        engine.register(QUERIES[2])
        assert engine.input_layer.stats.nodes == stats_after_first
        assert engine.input_layer.stats.requests > engine.input_layer.stats.nodes

    def test_identical_views_share_whole_subplans(self):
        graph, *_ = small_graph()
        engine = IncrementalEngine(graph, share_inputs=True)
        engine.register(QUERIES[2])
        nodes_after_first = engine.input_layer.stats.subplan_nodes
        engine.register(QUERIES[2])
        # the second view cut over at the plan root: no new interior nodes
        assert engine.input_layer.stats.subplan_nodes == nodes_after_first
        assert engine.input_layer.stats.subplan_hits >= 1

    def test_late_view_sees_current_state_once(self):
        graph, p1, p2, c1 = small_graph()
        engine = IncrementalEngine(graph, share_inputs=True)
        first = engine.register(QUERIES[0])
        # register the same query again after the layer is already live
        second = engine.register(QUERIES[0])
        assert sorted(second.rows()) == sorted(first.rows())
        assert second.multiset() == first.multiset()  # no double counting

    def test_late_view_tracks_subsequent_updates(self):
        graph, p1, *_ = small_graph()
        engine = IncrementalEngine(graph, share_inputs=True)
        engine.register(QUERIES[0])
        late = engine.register(QUERIES[1])
        graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        assert dict(late.rows()) == {"en": 2, "de": 1}

    def test_detach_stops_updates_and_prunes(self):
        graph, *_ = small_graph()
        # strict eager pruning: no detached-subplan retention
        engine = IncrementalEngine(graph, share_inputs=True, detached_cache_size=0)
        view_a = engine.register(QUERIES[0])
        view_b = engine.register(QUERIES[2])
        assert engine.input_layer.node_count > 0
        view_b.detach()
        view_a.detach()
        assert engine.input_layer.node_count == 0
        # events after detach are harmless
        graph.add_vertex(labels=["Post"], properties={"lang": "xx"})

    def test_detach_leaves_other_views_live(self):
        graph, *_ = small_graph()
        engine = IncrementalEngine(graph, share_inputs=True)
        doomed = engine.register(QUERIES[0])
        survivor = engine.register(QUERIES[0])
        doomed.detach()
        graph.add_vertex(labels=["Post"], properties={"lang": "fr"})
        assert ("fr",) in survivor.rows()

    def test_unshared_engine_has_no_layer(self):
        graph, *_ = small_graph()
        engine = IncrementalEngine(graph, share_inputs=False)
        engine.register(QUERIES[0])
        assert engine.input_layer is None

    def test_write_queries_drive_shared_views(self):
        graph = PropertyGraph()
        engine = QueryEngine(graph, share_inputs=True)
        view_a = engine.register(QUERIES[0])
        view_b = engine.register(QUERIES[3])
        engine.execute(
            "CREATE (p:Post {lang: 'en'})-[:REPLY]->(c:Comm {lang: 'en'})"
        )
        assert view_a.rows() == [("en",)]
        assert len(view_b.rows()) == 1


# ---------------------------------------------------------------------------
# subplan tier
# ---------------------------------------------------------------------------

#: heavily overlapping views: common join cores under differing tops,
#: alpha-renamed twins, aggregation / dedup / projection variants
SUBPLAN_QUERIES = (
    "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN c, p",
    "MATCH (x:Post)-[:REPLY]->(y:Comm) RETURN x, y",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang "
    "RETURN p.lang AS lang, count(*) AS n",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN DISTINCT p",
    "MATCH (p:Post) RETURN p, p.lang",
    "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
    "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b",
    "MATCH (p:Post)-[:REPLY]->(c:Comm)-[:REPLY]->(d:Comm) RETURN p, d",
)

SP_LABELS = ("Post", "Comm", "Person")
SP_EDGE_TYPES = ("REPLY", "KNOWS")
SP_VALUES = ("en", "de", "hu", 1, 2, None)


class _Abort(Exception):
    pass


def _random_op(rng: random.Random, vertices: list[int], edges: list[int]):
    """One parameterised mutation, applicable to any identical graph."""
    roll = rng.random()
    if roll < 0.25 or not vertices:
        labels = rng.sample(SP_LABELS, rng.randint(0, 2))
        props = {"lang": rng.choice(SP_VALUES)} if rng.random() < 0.7 else {}
        return lambda g: g.add_vertex(labels=labels, properties=props)
    if roll < 0.45:
        src, tgt = rng.choice(vertices), rng.choice(vertices)
        edge_type = rng.choice(SP_EDGE_TYPES)
        return lambda g: g.add_edge(src, tgt, edge_type)
    if roll < 0.60:
        vertex = rng.choice(vertices)
        value = rng.choice(SP_VALUES)
        return lambda g: g.set_vertex_property(vertex, "lang", value)
    if roll < 0.72:
        vertex, label = rng.choice(vertices), rng.choice(SP_LABELS)
        if rng.random() < 0.5:
            return lambda g: g.add_label(vertex, label)
        return lambda g: g.remove_label(vertex, label)
    if roll < 0.85 and edges:
        edge = rng.choice(edges)
        return lambda g: g.remove_edge(edge)
    vertex = rng.choice(vertices)
    return lambda g: g.remove_vertex(vertex, detach=True)


class SubplanMirrorPair:
    """A subplan-sharing engine and its input-only baseline, fed identically."""

    def __init__(self, batch_transactions: bool = False):
        self.graphs = (PropertyGraph(), PropertyGraph())
        self.engines = (
            QueryEngine(
                self.graphs[0],
                share_subplans=True,
                batch_transactions=batch_transactions,
            ),
            QueryEngine(
                self.graphs[1],
                share_subplans=False,
                batch_transactions=batch_transactions,
            ),
        )
        self.queries: list[str] = []
        self.views: list[tuple] = []
        self.logs: list[tuple] = []

    def register(self, query: str) -> None:
        pair, logs = [], []
        for engine in self.engines:
            view = engine.register(query)
            log: list = []
            view.on_change(log.append)
            pair.append(view)
            logs.append(log)
        self.queries.append(query)
        self.views.append(tuple(pair))
        self.logs.append(tuple(logs))

    def detach(self, index: int) -> None:
        for view in self.views.pop(index):
            view.detach()
        self.queries.pop(index)
        self.logs.pop(index)

    def apply(self, op) -> None:
        for graph in self.graphs:
            op(graph)

    def assert_consistent(self, oracle: bool = False) -> None:
        for query, (shared, private) in zip(self.queries, self.views):
            assert shared.multiset() == private.multiset(), query
            if oracle:
                assert (
                    shared.multiset()
                    == self.engines[0].evaluate(query, use_views=False).multiset()
                ), query
        for query, (shared_log, private_log) in zip(self.queries, self.logs):
            assert shared_log == private_log, query


def _drive(pair: SubplanMirrorPair, rng: random.Random, operations: int) -> None:
    for step in range(operations):
        vertices = list(pair.graphs[0].vertices())
        edges = list(pair.graphs[0].edges())
        if rng.random() < 0.08:
            # an aborted transaction: compensation must leave both engines'
            # shared and private memories untouched
            ops = [
                _random_op(rng, vertices, edges) for _ in range(rng.randint(1, 4))
            ]

            def aborted(graph, ops=ops):
                try:
                    with graph.transaction():
                        for op in ops:
                            op(graph)
                        raise _Abort()
                except (_Abort, GraphError):
                    pass

            pair.apply(aborted)
        else:
            pair.apply(_random_op(rng, vertices, edges))
        pair.assert_consistent(oracle=step % 20 == 0)
    pair.assert_consistent(oracle=True)


class TestSubplanDifferential:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_stream_matches_input_only_baseline(self, seed):
        pair = SubplanMirrorPair()
        for query in SUBPLAN_QUERIES:
            pair.register(query)
        _drive(pair, random.Random(200 + seed), operations=60)

    @pytest.mark.parametrize("seed", range(2))
    def test_batched_transactions_match_baseline(self, seed):
        """Committed and rolled-back transactions under batch_transactions."""
        rng = random.Random(300 + seed)
        pair = SubplanMirrorPair(batch_transactions=True)
        for query in SUBPLAN_QUERIES:
            pair.register(query)
        for _ in range(20):
            vertices = list(pair.graphs[0].vertices())
            edges = list(pair.graphs[0].edges())
            ops = [
                _random_op(rng, vertices, edges) for _ in range(rng.randint(1, 5))
            ]
            abort = rng.random() < 0.3

            def run(graph, ops=ops, abort=abort):
                try:
                    with graph.transaction():
                        for op in ops:
                            op(graph)
                        if abort:
                            raise _Abort()
                except (_Abort, GraphError):
                    pass

            pair.apply(run)
            pair.assert_consistent(oracle=True)

    @pytest.mark.parametrize("seed", range(2))
    def test_mid_stream_register_and_detach(self, seed):
        """Views joining and leaving a live shared beta layer stay exact."""
        rng = random.Random(400 + seed)
        pair = SubplanMirrorPair()
        for query in SUBPLAN_QUERIES[:5]:
            pair.register(query)
        pool = list(SUBPLAN_QUERIES)
        for step in range(50):
            vertices = list(pair.graphs[0].vertices())
            edges = list(pair.graphs[0].edges())
            roll = rng.random()
            if roll < 0.10:
                pair.register(pool[rng.randrange(len(pool))])
            elif roll < 0.18 and len(pair.views) > 1:
                pair.detach(rng.randrange(len(pair.views)))
            else:
                pair.apply(_random_op(rng, vertices, edges))
            pair.assert_consistent(oracle=step % 10 == 0)
        pair.assert_consistent(oracle=True)

    def test_mid_batch_register_matches_baseline(self):
        rng = random.Random(17)
        pair = SubplanMirrorPair()
        for query in SUBPLAN_QUERIES[:4]:
            pair.register(query)
        for graph in pair.graphs:
            post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
            comm = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
            graph.add_edge(post, comm, "REPLY")
        scopes = [engine.batch() for engine in pair.engines]
        for scope in scopes:
            scope.__enter__()
        try:
            for _ in range(8):
                vertices = list(pair.graphs[0].vertices())
                edges = list(pair.graphs[0].edges())
                pair.apply(_random_op(rng, vertices, edges))
            for query in SUBPLAN_QUERIES[4:]:
                pair.register(query)
            for _ in range(8):
                vertices = list(pair.graphs[0].vertices())
                edges = list(pair.graphs[0].edges())
                pair.apply(_random_op(rng, vertices, edges))
        finally:
            for scope in scopes:
                scope.__exit__(None, None, None)
        pair.assert_consistent(oracle=True)


class TestSubplanMechanics:
    def test_alpha_renamed_views_share(self):
        graph, *_ = small_graph()
        engine = IncrementalEngine(graph)
        engine.register(SUBPLAN_QUERIES[0])
        nodes_before = engine.input_layer.stats.subplan_nodes
        engine.register(SUBPLAN_QUERIES[2])  # same plan, renamed variables
        assert engine.input_layer.stats.subplan_hits >= 1
        # the join core is reused; only the top projection may be new
        assert engine.input_layer.stats.subplan_nodes <= nodes_before + 1

    def test_shared_beta_layer_reduces_memory(self):
        engines = {}
        for share in (True, False):
            graph = generate_social(persons=10, posts_per_person=2, seed=3).graph
            engine = IncrementalEngine(graph, share_subplans=share)
            for query in SUBPLAN_QUERIES[:6]:
                engine.register(query)
                engine.register(query)  # a second identical subscriber
            engines[share] = engine
        assert engines[True].memory_cells() < engines[False].memory_cells()

    def test_late_view_replays_interior_state_once(self):
        graph, p1, p2, c1 = small_graph()
        engine = IncrementalEngine(graph)
        first = engine.register(SUBPLAN_QUERIES[3])
        late = engine.register(SUBPLAN_QUERIES[3])
        assert late.multiset() == first.multiset()
        c2 = graph.add_vertex(labels=["Comm"], properties={"lang": "de"})
        graph.add_edge(p2, c2, "REPLY")
        assert late.multiset() == first.multiset()

    def test_equal_but_differently_typed_bindings_do_not_share(self):
        """1 == True == 1.0 in Python; the cache key must not conflate them."""
        graph = PropertyGraph()
        graph.add_vertex(labels=["Post"])
        engine = IncrementalEngine(graph)
        query = "MATCH (p:Post) RETURN p, $x AS x"
        as_int = engine.register(query, parameters={"x": 1})
        as_bool = engine.register(query, parameters={"x": True})
        as_float = engine.register(query, parameters={"x": 1.0})
        assert [row[1] for row in as_int.rows()] == [1]
        assert [row[1] for row in as_bool.rows()] == [True]
        assert [row[1] for row in as_float.rows()] == [1.0]
        assert all(isinstance(row[1], int) for row in as_int.rows())
        assert all(isinstance(row[1], bool) for row in as_bool.rows())
        assert all(isinstance(row[1], float) for row in as_float.rows())

    def test_parameterised_views_share_only_equal_bindings(self):
        graph = PropertyGraph()
        for score in (1, 2, 3):
            graph.add_vertex(labels=["Post"], properties={"score": score})
        engine = IncrementalEngine(graph)
        query = "MATCH (p:Post) WHERE p.score > $min RETURN p"
        low = engine.register(query, parameters={"min": 1})
        hits_before = engine.input_layer.stats.subplan_hits
        low_twin = engine.register(query, parameters={"min": 1})
        assert engine.input_layer.stats.subplan_hits > hits_before
        high = engine.register(query, parameters={"min": 2})
        assert low.multiset() == low_twin.multiset()
        assert len(low.rows()) == 2
        assert len(high.rows()) == 1

    def test_identical_subtrees_within_one_plan_share_a_node(self):
        """Intra-plan sharing: both cross-product arms are the same node,
        and the sequential self-join rule keeps the result exact."""
        graph = PropertyGraph()
        c1 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        c2 = graph.add_vertex(labels=["Comm"], properties={"lang": "de"})
        graph.add_edge(c1, c2, "REPLY")
        query = (
            "MATCH (a:Comm)-[:REPLY]->(b:Comm), (c:Comm)-[:REPLY]->(d:Comm) "
            "RETURN a, d"
        )
        engine = IncrementalEngine(graph)
        view = engine.register(query)
        assert view.multiset() == engine_oracle(engine, query)
        c3 = graph.add_vertex(labels=["Comm"], properties={"lang": "hu"})
        graph.add_edge(c2, c3, "REPLY")
        assert view.multiset() == engine_oracle(engine, query)
        graph.remove_edge(next(iter(graph.edges("REPLY"))))
        assert view.multiset() == engine_oracle(engine, query)

    def test_profile_marks_shared_interior_nodes(self):
        graph, *_ = small_graph()
        engine = IncrementalEngine(graph)
        view = engine.register(SUBPLAN_QUERIES[3])
        assert "(shared)" in view.profile()
        assert "Join (shared)" in view.profile()


class TestSubplanLifecycle:
    def test_detach_releases_refcounts_bottom_up(self):
        graph, *_ = small_graph()
        engine = IncrementalEngine(graph, detached_cache_size=0)
        layer = engine.input_layer
        assert isinstance(layer, SharedSubplanLayer)
        view_a = engine.register(SUBPLAN_QUERIES[3])
        view_b = engine.register(SUBPLAN_QUERIES[4])  # shares the σ(⋈) core
        count_with_both = layer.subplan_count
        assert count_with_both > 0
        view_b.detach()
        # the shared core survives: view_a still reads it
        assert layer.subplan_count > 0
        graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        assert view_a.multiset() == engine_oracle(engine, SUBPLAN_QUERIES[3])
        view_a.detach()
        assert layer.subplan_count == 0
        assert layer.node_count == 0

    def test_interior_chain_outlives_its_creator(self):
        """A subplan created by view A must keep feeding view B after A dies."""
        graph, p1, p2, c1 = small_graph()
        engine = IncrementalEngine(graph)
        creator = engine.register(SUBPLAN_QUERIES[3])
        survivor = engine.register(SUBPLAN_QUERIES[3])
        creator.detach()
        c2 = graph.add_vertex(labels=["Comm"], properties={"lang": "de"})
        graph.add_edge(p2, c2, "REPLY")
        assert survivor.multiset() == engine_oracle(engine, SUBPLAN_QUERIES[3])

    def test_memories_freed_and_rebuild_is_correct(self):
        graph, *_ = small_graph()
        engine = IncrementalEngine(graph, detached_cache_size=0)
        view = engine.register(SUBPLAN_QUERIES[3])
        assert engine.memory_cells() > 0
        view.detach()
        assert engine.input_layer.memory_cells() == 0
        assert engine.input_layer.subplan_count == 0
        # events while nothing is registered are harmless
        graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        rebuilt = engine.register(SUBPLAN_QUERIES[3])
        assert rebuilt.multiset() == engine_oracle(engine, SUBPLAN_QUERIES[3])

    def test_random_register_detach_cycles_leave_no_garbage(self):
        rng = random.Random(99)
        bundle = generate_social(persons=6, posts_per_person=2, seed=11)
        engine = IncrementalEngine(bundle.graph, detached_cache_size=0)
        live = []
        for _ in range(40):
            if live and rng.random() < 0.45:
                live.pop(rng.randrange(len(live))).detach()
            else:
                live.append(
                    engine.register(
                        SUBPLAN_QUERIES[rng.randrange(len(SUBPLAN_QUERIES))]
                    )
                )
        for view in live:
            view.detach()
        assert engine.input_layer.subplan_count == 0
        assert engine.input_layer.node_count == 0

    def test_ablation_engine_has_no_subplan_cache(self):
        graph, *_ = small_graph()
        engine = IncrementalEngine(graph, share_subplans=False)
        engine.register(SUBPLAN_QUERIES[3])
        assert not isinstance(engine.input_layer, SharedSubplanLayer)
        assert engine.input_layer.stats.subplan_nodes == 0


def engine_oracle(engine: IncrementalEngine, query: str):
    """One-shot recomputation over the engine's graph (the IVM oracle)."""
    from repro.compiler.pipeline import compile_query
    from repro.eval.interpreter import Interpreter

    return Interpreter(engine.graph).run(compile_query(query).plan).multiset()
