"""Property-based tests for the incremental transitive-closure node.

The node's contract: after any interleaving of edge insertions and
deletions, its trail store equals the from-scratch trail enumeration
(`repro.eval.enumerate_trails`) over the surviving edges — for every
direction mode and hop bound.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.schema import AttrKind, Attribute, Schema
from repro.eval import enumerate_trails
from repro.graph import PropertyGraph
from repro.graph.values import PathValue
from repro.rete.deltas import Delta
from repro.rete.nodes.base import LEFT, Node
from repro.rete.nodes.transitive import EDGES, TransitiveClosureNode


class Sink(Node):
    def __init__(self):
        super().__init__(Schema(()))
        self.bag: dict[tuple, int] = {}

    def apply(self, delta: Delta, side: int) -> None:
        for row, multiplicity in delta.items():
            count = self.bag.get(row, 0) + multiplicity
            if count:
                self.bag[row] = count
            else:
                del self.bag[row]


def make_node(direction="out", min_hops=1, max_hops=None):
    schema = Schema(
        [
            Attribute("s", AttrKind.VERTEX),
            Attribute("end", AttrKind.VERTEX),
            Attribute("path", AttrKind.PATH),
        ]
    )
    node = TransitiveClosureNode(schema, 0, direction, min_hops, max_hops, True)
    sink = Sink()
    node.subscribe(sink)
    return node, sink


#: An operation stream: each element inserts an edge between small vertex
#: ids, or (when the second flag is high) deletes the i-th live edge.
operations = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 9)),
    min_size=0,
    max_size=14,
)


def apply_operations(node, ops_list, direction):
    """Drive the node and a shadow graph through the same edge stream."""
    graph = PropertyGraph()
    vertex_ids = [graph.add_vertex() for _ in range(5)]
    live: list[tuple[int, int, int]] = []  # (edge_id, src, tgt)
    next_edge = 100
    for src_i, tgt_i, action in ops_list:
        if action < 7 or not live:
            src, tgt = vertex_ids[src_i], vertex_ids[tgt_i]
            edge_id = next_edge
            next_edge += 1
            graph_edge = graph.add_edge(src, tgt, "T")
            # keep the node's edge ids aligned with the graph's
            delta = Delta()
            delta.add((src, graph_edge, tgt), 1)
            node.apply(delta, EDGES)
            live.append((graph_edge, src, tgt))
        else:
            index = action % len(live)
            edge_id, src, tgt = live.pop(index)
            graph.remove_edge(edge_id)
            delta = Delta()
            delta.add((src, edge_id, tgt), -1)
            node.apply(delta, EDGES)
    return graph, vertex_ids


def expected_rows(graph, sources, direction, min_hops, max_hops):
    out: dict[tuple, int] = {}
    for source in sources:
        for end, path in enumerate_trails(
            graph, source, ("T",), direction, min_hops, max_hops
        ):
            row = (source, end, path)
            out[row] = out.get(row, 0) + 1
    return out


@settings(max_examples=60, deadline=None)
@given(ops_list=operations, direction=st.sampled_from(["out", "in", "both"]))
def test_node_matches_trail_enumeration(ops_list, direction):
    node, sink = make_node(direction=direction, max_hops=4)
    # activate all five potential sources up front
    left = Delta()
    graph_probe = PropertyGraph()
    probe_ids = [graph_probe.add_vertex() for _ in range(5)]
    for vertex in probe_ids:
        left.add((vertex,), 1)
    node.apply(left, LEFT)
    graph, vertex_ids = apply_operations(node, ops_list, direction)
    assert vertex_ids == probe_ids  # same dense ids in both graphs
    assert sink.bag == expected_rows(graph, vertex_ids, direction, 1, 4)


@settings(max_examples=40, deadline=None)
@given(ops_list=operations)
def test_min_zero_includes_self_rows(ops_list):
    node, sink = make_node(min_hops=0, max_hops=3)
    left = Delta()
    graph_probe = PropertyGraph()
    probe_ids = [graph_probe.add_vertex() for _ in range(5)]
    for vertex in probe_ids:
        left.add((vertex,), 1)
    node.apply(left, LEFT)
    graph, vertex_ids = apply_operations(node, ops_list, "out")
    assert sink.bag == expected_rows(graph, vertex_ids, "out", 0, 3)
    for vertex in vertex_ids:
        assert sink.bag.get((vertex, vertex, PathValue((vertex,), ()))) == 1


@settings(max_examples=30, deadline=None)
@given(ops_list=operations)
def test_insert_then_delete_everything_leaves_empty_store(ops_list):
    node, sink = make_node(max_hops=4)
    left = Delta()
    graph_probe = PropertyGraph()
    for _ in range(5):
        left.add((graph_probe.add_vertex(),), 1)
    node.apply(left, LEFT)
    graph, _ = apply_operations(node, ops_list, "out")
    # retract every surviving edge
    for edge in list(graph.edges()):
        src, tgt = graph.endpoints(edge)
        delta = Delta()
        delta.add((src, edge, tgt), -1)
        node.apply(delta, EDGES)
        graph.remove_edge(edge)
    assert sink.bag == {}
    assert not any(node.trails_by_start.get(v) for v in node.trails_by_start)
    assert not node.trails_by_edge
