"""Wire-format regression: everything the sharded tier ships must pickle.

The shard coordinator's entire protocol is pickled tuples over pipes:
consolidated :class:`~repro.rete.batch.CoalescedBatch` payloads outbound,
:class:`~repro.rete.deltas.Delta` streams (whose rows may carry the frozen
graph values ``ListValue``/``MapValue``/``PathValue``) inbound, and
``state_delta()`` bags during view migration.  Each class here serialises
one layer and requires the round trip to be lossless — including *replay
parity*: a deserialised batch rebuilds an identical graph, and every live
Rete node's serialised ``state_delta()`` reconstructs the exact memory the
``populate()`` replay path would install.
"""

import pickle
import random

import pytest

from repro import ListValue, MapValue, PathValue, PropertyGraph, QueryEngine
from repro.graph import events as ev
from repro.rete.batch import BatchAccumulator
from repro.rete.deltas import ColumnDelta, Delta
from repro.rete.shard import apply_batch_to_replica

from .test_sharing import _random_op


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


class TestValueRoundTrips:
    def test_list_value(self):
        value = ListValue((1, "two", None, ListValue((3,))))
        restored = roundtrip(value)
        assert restored == value
        assert isinstance(restored, ListValue)
        assert hash(restored) == hash(value)

    def test_map_value(self):
        value = MapValue({"a": 1, "nested": MapValue({"b": ListValue((2,))})})
        restored = roundtrip(value)
        assert restored == value
        assert isinstance(restored, MapValue)
        assert hash(restored) == hash(value)
        assert dict(restored.items()) == dict(value.items())

    def test_path_value(self):
        value = PathValue((1, 2, 3), (10, 11))
        restored = roundtrip(value)
        assert restored == value
        assert isinstance(restored, PathValue)
        assert hash(restored) == hash(value)
        assert restored.vertices == (1, 2, 3) and restored.edges == (10, 11)

    def test_zero_length_path(self):
        assert roundtrip(PathValue((7,), ())) == PathValue((7,), ())


EVENTS = [
    ev.VertexAdded(1, frozenset({"Post"}), {"lang": "en"}),
    ev.VertexRemoved(1, frozenset({"Post"}), {"lang": "en"}),
    ev.VertexLabelAdded(1, "Comm"),
    ev.VertexLabelRemoved(1, "Comm"),
    ev.VertexPropertySet(1, "lang", "en", "de"),
    ev.VertexChanged(
        1, frozenset({"Post"}), {"lang": "en"}, frozenset({"Comm"}), {"lang": None}
    ),
    ev.EdgeAdded(5, 1, 2, "REPLY", {"w": 1}),
    ev.EdgeRemoved(5, 1, 2, "REPLY", {"w": 1}),
    ev.EdgePropertySet(5, "w", 1, 2),
    ev.EdgeChanged(5, 1, 2, "REPLY", {"w": 1}, {"w": 2}),
]


class TestEventRoundTrips:
    @pytest.mark.parametrize(
        "event", EVENTS, ids=[type(e).__name__ for e in EVENTS]
    )
    def test_event(self, event):
        restored = roundtrip(event)
        assert restored == event
        assert type(restored) is type(event)


class TestDeltaRoundTrips:
    def test_delta_with_frozen_value_rows(self):
        delta = Delta(
            [
                ((1, "en"), 2),
                ((MapValue({"k": 1}), ListValue((1, 2))), -1),
                ((PathValue((1, 2), (9,)),), 3),
            ]
        )
        restored = roundtrip(delta)
        assert restored == delta
        assert dict(restored.items()) == dict(delta.items())

    def test_column_delta(self):
        delta = Delta([((1, "en"), 1), ((2, "de"), -2), ((3, None), 1)])
        column = ColumnDelta.from_delta(delta, width=2)
        restored = roundtrip(column)
        assert restored.width == column.width
        assert restored.mults == column.mults
        assert restored.columns == column.columns
        assert restored.to_delta() == delta


class TestBatchReplayParity:
    """A pickled batch must rebuild the source graph on a fresh replica."""

    def _assert_equal_graphs(self, left: PropertyGraph, right: PropertyGraph):
        left_vertices = {
            v: (left.labels_of(v), dict(left.vertex_properties(v)))
            for v in left.vertices()
        }
        right_vertices = {
            v: (right.labels_of(v), dict(right.vertex_properties(v)))
            for v in right.vertices()
        }
        assert left_vertices == right_vertices
        left_edges = {
            e: (left.endpoints(e), left.type_of(e), dict(left.edge_properties(e)))
            for e in left.edges()
        }
        right_edges = {
            e: (
                right.endpoints(e),
                right.type_of(e),
                dict(right.edge_properties(e)),
            )
            for e in right.edges()
        }
        assert left_edges == right_edges

    def test_random_batches_replay_onto_replica(self):
        rng = random.Random(900)
        source, replica = PropertyGraph(), PropertyGraph()
        for window in range(25):
            accumulator = BatchAccumulator(source)
            source.subscribe(accumulator.record)
            try:
                for _ in range(rng.randint(1, 6)):
                    vertices = list(source.vertices())
                    edges = list(source.edges())
                    _random_op(rng, vertices, edges)(source)
            finally:
                source.unsubscribe(accumulator.record)
            batch = accumulator.consolidate()
            restored = roundtrip(batch)
            assert restored.vertex_events == batch.vertex_events
            assert restored.edge_events == batch.edge_events
            assert restored.vertex_before_labels == batch.vertex_before_labels
            assert (
                restored.vertex_before_properties
                == batch.vertex_before_properties
            )
            apply_batch_to_replica(replica, restored)
            self._assert_equal_graphs(source, replica)
        # ids stay in lockstep too: fresh entities get identical ids
        assert source.add_vertex() == replica.add_vertex()


class TestStateDeltaReplayParity:
    """Every node's migration payload reconstructs its live memory."""

    #: covers input, selection, join (inner/anti via OPTIONAL-free fragment),
    #: dedup, aggregate, transitive and production nodes
    QUERIES = (
        "MATCH (p:Post) RETURN p.lang AS lang",
        "MATCH (p:Post) WHERE p.lang = 'en' RETURN p",
        "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
        "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
        "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN DISTINCT p",
        "MATCH (p:Post)-[:REPLY*1..2]->(c:Comm) RETURN p, c",
    )

    def _populate(self, graph, rng):
        for _ in range(40):
            vertices = list(graph.vertices())
            edges = list(graph.edges())
            _random_op(rng, vertices, edges)(graph)

    @pytest.mark.parametrize("columnar", [True, False], ids=["columnar", "rows"])
    def test_every_node_state_survives_the_wire(self, columnar):
        graph = PropertyGraph()
        engine = QueryEngine(graph, columnar_deltas=columnar)
        views = [engine.register(query) for query in self.QUERIES]
        views.append(
            engine.register(
                "MATCH (p:Post) WHERE p.lang = $lang RETURN p", {"lang": "en"}
            )
        )
        self._populate(graph, random.Random(901))
        checked = 0
        for view in views:
            for node in view.network.nodes():
                state = node.state_delta()
                if state is None:
                    continue
                restored = roundtrip(state)
                assert restored == state, type(node).__name__
                assert dict(restored.items()) == dict(state.items())
                checked += 1
        assert checked >= len(views)  # at least every production memory

    def test_view_multiset_equals_shipped_state(self):
        """The migration payload (the production's bag) is the view itself."""
        graph = PropertyGraph()
        engine = QueryEngine(graph)
        view = engine.register("MATCH (p:Post) RETURN p.lang AS lang")
        self._populate(graph, random.Random(902))
        shipped = roundtrip(Delta(view.multiset().items()))
        assert dict(shipped.items()) == view.multiset()
