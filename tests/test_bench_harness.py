"""Tests for the shared benchmark harness (formatting and timing)."""

from repro.bench import Timer, format_table, speedup
from repro.bench.harness import Measurement, timed


class TestTimer:
    def test_measures_nonnegative(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.seconds >= 0

    def test_timed_returns_value_and_duration(self):
        value, duration = timed(lambda: 42)
        assert value == 42
        assert duration >= 0


class TestMeasurement:
    def test_statistics(self):
        m = Measurement("x")
        for sample in (1.0, 2.0, 3.0):
            m.record(sample)
        assert m.total == 6.0
        assert m.mean == 2.0
        assert m.median == 2.0

    def test_empty_measurement(self):
        m = Measurement("x")
        assert m.mean == 0.0
        assert m.median == 0.0


class TestFormatTable:
    def test_unit_scaling(self):
        text = format_table(
            ["label", "time"],
            [["us", 5e-6], ["ms", 5e-3], ["s", 5.0], ["zero", 0.0]],
        )
        assert "5.0µs" in text
        assert "5.00ms" in text
        assert "5.000s" in text

    def test_title_and_alignment(self):
        text = format_table(["a", "bee"], [["x", 1], ["longer", 2]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1  # aligned

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_non_float_cells_passthrough(self):
        text = format_table(["n"], [[12345]])
        assert "12345" in text


class TestSpeedup:
    def test_ratio(self):
        assert speedup(1.0, 0.5) == "2.0x"

    def test_zero_subject(self):
        assert speedup(1.0, 0.0) == "inf"
