"""Tests for the CI benchmark trend gate (``benchmarks/bench_trend.py``)."""

import importlib.util
import json
from pathlib import Path

import pytest

SPEC = importlib.util.spec_from_file_location(
    "bench_trend",
    Path(__file__).resolve().parents[1] / "benchmarks" / "bench_trend.py",
)
bench_trend = importlib.util.module_from_spec(SPEC)
SPEC.loader.exec_module(bench_trend)


def point(experiment, **metrics):
    return {"experiment": experiment, **metrics}


def write_point(directory: Path, data: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{data['experiment']}.json"
    path.write_text(json.dumps(data) + "\n")


class TestRegression:
    def test_higher_is_better(self):
        assert bench_trend.regression(2.0, 1.0, "up") == pytest.approx(0.5)
        assert bench_trend.regression(2.0, 3.0, "up") == pytest.approx(-0.5)

    def test_lower_is_better(self):
        assert bench_trend.regression(1.0, 1.5, "down") == pytest.approx(0.5)
        assert bench_trend.regression(1.0, 0.5, "down") == pytest.approx(-0.5)

    def test_zero_baseline_never_regresses(self):
        assert bench_trend.regression(0.0, 5.0, "up") == 0.0


class TestCompare:
    BASELINES = {
        "columnar_memory": {"cells_reduction": 1.7, "churn_speedup": 1.0},
        "sharing": {"memory_ratio": 2.4, "throughput_speedup": 1.9},
        "param_sharing": {
            "memory_ratio": 8.9,
            "shared_layer_growth": 1.0,
            "throughput_speedup": 2.7,
            "registration_speedup": 1.0,
        },
    }

    def fresh(self, **overrides):
        points = {
            name: point(name, **dict(metrics))
            for name, metrics in self.BASELINES.items()
        }
        for name, metrics in overrides.items():
            points[name].update(metrics)
        return points

    def test_identical_points_pass(self):
        failures, warnings = bench_trend.compare(self.BASELINES, self.fresh())
        assert failures == []
        assert warnings == []

    def test_improvements_pass(self):
        fresh = self.fresh(
            columnar_memory={"cells_reduction": 3.0},
            param_sharing={"shared_layer_growth": 0.8},
        )
        failures, _ = bench_trend.compare(self.BASELINES, fresh)
        assert failures == []

    def test_hard_regression_fails(self):
        fresh = self.fresh(columnar_memory={"cells_reduction": 1.0})
        failures, _ = bench_trend.compare(self.BASELINES, fresh)
        assert len(failures) == 1
        assert "columnar_memory.cells_reduction" in failures[0]

    def test_lower_is_better_metric_fails_when_it_grows(self):
        fresh = self.fresh(param_sharing={"shared_layer_growth": 1.9})
        failures, _ = bench_trend.compare(self.BASELINES, fresh)
        assert len(failures) == 1
        assert "shared_layer_growth" in failures[0]

    def test_timing_regression_only_warns(self):
        fresh = self.fresh(sharing={"throughput_speedup": 0.5})
        failures, warnings = bench_trend.compare(self.BASELINES, fresh)
        assert failures == []
        assert len(warnings) == 1
        assert "sharing.throughput_speedup" in warnings[0]

    def test_missing_fresh_point_fails(self):
        fresh = self.fresh()
        del fresh["sharing"]
        failures, _ = bench_trend.compare(self.BASELINES, fresh)
        assert any("sharing: no fresh point" in line for line in failures)

    def test_missing_metric_fails(self):
        fresh = self.fresh()
        del fresh["columnar_memory"]["cells_reduction"]
        failures, _ = bench_trend.compare(self.BASELINES, fresh)
        assert any("cells_reduction: metric missing" in f for f in failures)

    def test_unbaselined_experiment_is_skipped(self):
        baselines = {"sharing": dict(self.BASELINES["sharing"])}
        failures, _ = bench_trend.compare(baselines, self.fresh())
        assert failures == []

    def test_regression_within_tolerance_passes(self):
        fresh = self.fresh(columnar_memory={"cells_reduction": 1.7 * 0.75})
        failures, _ = bench_trend.compare(self.BASELINES, fresh)
        assert failures == []
        failures, _ = bench_trend.compare(
            self.BASELINES, fresh, tolerance=0.10
        )
        assert len(failures) == 1


class TestMain:
    def seed(self, tmp_path: Path):
        fresh = tmp_path / "fresh"
        for name, metrics in TestCompare.BASELINES.items():
            write_point(fresh, point(name, **metrics))
        baseline = tmp_path / "baselines.json"
        baseline.write_text(json.dumps(TestCompare.BASELINES) + "\n")
        return fresh, baseline

    def test_pass_exit_zero(self, tmp_path, capsys):
        fresh, baseline = self.seed(tmp_path)
        status = bench_trend.main(
            ["--fresh", str(fresh), "--baseline", str(baseline)]
        )
        assert status == 0
        assert "trend gate passed" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        fresh, baseline = self.seed(tmp_path)
        write_point(fresh, point("sharing", memory_ratio=1.0,
                                 throughput_speedup=1.9))
        status = bench_trend.main(
            ["--fresh", str(fresh), "--baseline", str(baseline)]
        )
        assert status == 1
        assert "REGRESSION: sharing.memory_ratio" in capsys.readouterr().out

    def test_update_writes_declared_metrics_only(self, tmp_path):
        fresh, baseline = self.seed(tmp_path)
        write_point(
            fresh,
            point("sharing", memory_ratio=9.9, throughput_speedup=2.0,
                  baseline_seconds=1.23),
        )
        status = bench_trend.main(
            ["--fresh", str(fresh), "--baseline", str(baseline), "--update"]
        )
        assert status == 0
        written = json.loads(baseline.read_text())
        assert written["sharing"] == {
            "memory_ratio": 9.9,
            "throughput_speedup": 2.0,
        }  # undeclared keys (raw timings) are not baselined


class TestCommittedBaselines:
    def test_file_covers_every_declared_experiment(self):
        committed = json.loads(bench_trend.BASELINE_PATH.read_text())
        for experiment, metrics in bench_trend.HARD_METRICS.items():
            assert experiment in committed, experiment
            for metric in metrics:
                assert metric in committed[experiment], (experiment, metric)
                assert committed[experiment][metric] > 0

    def test_hard_metrics_are_ratios_not_timings(self):
        for metrics in bench_trend.HARD_METRICS.values():
            for metric in metrics:
                assert "seconds" not in metric and "speedup" not in metric
