"""Tests for the interactive shell (`python -m repro`)."""

import io

import pytest

from repro.cli import main


def run_shell(script: str, *argv: str) -> tuple[int, str]:
    out = io.StringIO()
    status = main(list(argv), stdin=io.StringIO(script), stdout=out)
    return status, out.getvalue()


class TestStatements:
    def test_create_reports_summary(self):
        status, output = run_shell("CREATE (n:Post {lang: 'en'});\n")
        assert status == 0
        assert "1 nodes created" in output

    def test_read_query_prints_table(self):
        status, output = run_shell(
            "CREATE (n:Post {lang: 'en'});\nMATCH (p:Post) RETURN p.lang AS lang;\n"
        )
        assert status == 0
        assert "lang" in output and "'en'" in output

    def test_multiline_statement_buffers(self):
        status, output = run_shell(
            "CREATE (n:Post\n  {lang: 'en'})\n;\nMATCH (p:Post) RETURN count(*) AS n;\n"
        )
        assert status == 0
        assert "1" in output

    def test_trailing_statement_without_semicolon(self):
        status, output = run_shell("CREATE (n:Post)")
        assert status == 0
        assert "1 nodes created" in output

    def test_error_reported_and_nonzero_exit(self):
        status, output = run_shell("MATCH (n RETURN n;\n")
        assert status == 1
        assert "error:" in output

    def test_shell_keeps_going_after_error(self):
        status, output = run_shell("BROKEN;\nCREATE (n:X);\n")
        assert status == 1
        assert "1 nodes created" in output


class TestMetaCommands:
    def test_help(self):
        status, output = run_shell(":help\n")
        assert status == 0
        assert ":register" in output

    def test_register_and_views(self):
        status, output = run_shell(
            ":register MATCH (p:Post) RETURN p\n"
            "CREATE (n:Post);\n"
            ":views\n"
        )
        assert status == 0
        assert "registered view [0]" in output
        assert "1 distinct rows" in output

    def test_detach(self):
        status, output = run_shell(
            ":register MATCH (p:Post) RETURN p\n:detach 0\n:views\n"
        )
        assert status == 0
        assert "detached view [0]" in output
        assert "no views registered" in output

    def test_explain(self):
        status, output = run_shell(":explain MATCH (p:Post) RETURN p\n")
        assert status == 0
        assert "GRA" in output and "FRA" in output

    def test_profile(self):
        status, output = run_shell(
            ":register MATCH (p:Post) RETURN p\nCREATE (x:Post);\n:profile 0\n"
        )
        assert status == 0
        assert "Production" in output

    def test_index_management(self):
        status, output = run_shell(":index Tag name\n:indexes\n")
        assert status == 0
        assert output.count("(:Tag {name})") == 2

    def test_stats(self):
        status, output = run_shell("CREATE (a:X)-[:R]->(b:Y);\n:stats\n")
        assert status == 0
        assert "2 vertices, 1 edges" in output
        assert ":X  1" in output

    def test_quit_stops_processing(self):
        status, output = run_shell(":quit\nCREATE (n:X);\n")
        assert status == 0
        assert "nodes created" not in output

    def test_unknown_command(self):
        status, output = run_shell(":bogus\n")
        assert status == 1
        assert "unknown command" in output

    def test_checkpoint_requires_db(self):
        status, output = run_shell(":checkpoint\n")
        assert "not a durable store" in output


class TestDurableMode:
    def test_db_mode_persists_across_sessions(self, tmp_path):
        db = str(tmp_path / "shelldb")
        status, _ = run_shell("CREATE (n:Post {lang: 'en'});\n", "--db", db)
        assert status == 0
        status, output = run_shell(
            "MATCH (p:Post) RETURN p.lang AS lang;\n", "--db", db
        )
        assert status == 0
        assert "'en'" in output

    def test_checkpoint_in_db_mode(self, tmp_path):
        db = str(tmp_path / "shelldb")
        status, output = run_shell(
            "CREATE (n:Post);\n:checkpoint\n", "--db", db
        )
        assert status == 0
        assert "checkpointed" in output
        assert (tmp_path / "shelldb" / "snapshot.jsonl").exists()

    def test_file_mode(self, tmp_path):
        script = tmp_path / "script.cypher"
        script.write_text(
            "CREATE (n:Post {lang: 'fr'});\n"
            "MATCH (p:Post) RETURN p.lang AS lang;\n"
        )
        out = io.StringIO()
        status = main(["--file", str(script)], stdout=out)
        assert status == 0
        assert "'fr'" in out.getvalue()
