"""Run the doctests embedded in public-API docstrings.

The examples in module/class docstrings are part of the documentation
contract; this keeps them executable without turning on doctest collection
globally.
"""

import doctest

import pytest

import repro
import repro.api
import repro.graph.graph
import repro.graph.persistence
import repro.graph.transactions


@pytest.mark.parametrize(
    "module",
    [
        repro,
        repro.api,
        repro.graph.graph,
        repro.graph.persistence,
        repro.graph.transactions,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False, optionflags=doctest.ELLIPSIS)
    assert result.failed == 0
    assert result.attempted > 0  # every listed module must carry examples
