"""Every example script must run cleanly end to end.

Each example asserts its own IVM invariant (view ≡ recompute) internally,
so a zero exit status means the scenario really worked.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout  # every example narrates what it does


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "social_feed",
        "train_validation",
        "fraud_detection",
        "code_analysis",
        "active_monitoring",
    } <= names
