"""Execute the code blocks embedded in README.md.

Documentation that silently rots is worse than none; every ```python
block in the README must run as-is against the current API.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    """The README's ```python blocks, or [] when no README exists.

    Returning an empty list (instead of raising) keeps collection alive on
    checkouts without a README; the count assertion below still fails
    loudly in that case.
    """
    if not README.is_file():
        return []
    text = README.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, re.S)


@pytest.mark.parametrize("index", range(len(python_blocks())))
def test_readme_block_executes(index, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # blocks may create ./mydb etc.
    block = python_blocks()[index]
    exec(compile(block, f"README block {index}", "exec"), {})


def test_readme_has_code_blocks():
    assert len(python_blocks()) >= 2
