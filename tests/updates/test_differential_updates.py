"""Property-based differential testing of the write path.

Random streams of updating statements run against a graph with live
incremental views; after every statement each view's contents must equal
full recomputation of the same query (the paper's IVM property, now driven
end-to-end through the Cypher write surface instead of raw graph calls).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import PropertyGraph, QueryEngine

VIEW_QUERIES = [
    "MATCH (p:Post) RETURN p.lang AS lang",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c",
    "MATCH (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
    "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
]

LANGS = ["en", "de", "fr"]


statements = st.lists(
    st.builds(lambda *a: a, st.integers(0, 7), st.integers(0, 2), st.integers(0, 2)),
    min_size=1,
    max_size=12,
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=statements)
def test_views_track_recompute_through_write_statements(ops):
    graph = PropertyGraph()
    engine = QueryEngine(graph)
    views = [engine.register(q) for q in VIEW_QUERIES]
    for kind, li, oi in ops:
        lang, other = LANGS[li], LANGS[oi]
        if kind == 0:
            statement = f"CREATE (p:Post {{lang: '{lang}'}})"
        elif kind == 1:
            statement = (
                f"MATCH (p:Post {{lang: '{lang}'}}) "
                f"CREATE (p)-[:REPLY]->(c:Comm {{lang: '{other}'}})"
            )
        elif kind == 2:
            statement = (
                f"MATCH (c:Comm {{lang: '{lang}'}}) "
                f"CREATE (c)-[:REPLY]->(d:Comm {{lang: '{other}'}})"
            )
        elif kind == 3:
            statement = f"MATCH (c:Comm {{lang: '{lang}'}}) SET c.lang = '{other}'"
        elif kind == 4:
            statement = f"MATCH (c:Comm {{lang: '{lang}'}}) DETACH DELETE c"
        elif kind == 5:
            statement = (
                f"MERGE (p:Post {{lang: '{lang}'}}) ON MATCH SET p.hits = 1"
            )
        elif kind == 6:
            statement = (
                f"MATCH (p:Post {{lang: '{lang}'}})-[r:REPLY]->(c:Comm) DELETE r"
            )
        else:
            statement = f"MATCH (p:Post {{lang: '{lang}'}}) REMOVE p.hits"
        engine.execute(statement)
        for query, view in zip(VIEW_QUERIES, views):
            assert sorted(view.rows(), key=repr) == sorted(
                engine.evaluate(query, use_views=False).rows(), key=repr
            ), statement


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 5),
    lang_indices=st.lists(st.integers(0, 2), min_size=1, max_size=5),
)
def test_merge_node_idempotence(n, lang_indices):
    graph = PropertyGraph()
    engine = QueryEngine(graph)
    for _ in range(n):
        for index in lang_indices:
            engine.execute(f"MERGE (p:Post {{lang: '{LANGS[index]}'}})")
    distinct = {LANGS[i] for i in lang_indices}
    assert graph.vertex_count == len(distinct)


@settings(max_examples=25, deadline=None)
@given(values=st.lists(st.integers(-5, 5), min_size=0, max_size=8))
def test_create_collect_roundtrip(values):
    engine = QueryEngine(PropertyGraph())
    literal = "[" + ", ".join(str(v) for v in values) + "]"
    engine.execute(f"UNWIND {literal} AS v CREATE (n:Num {{v: v}})")
    result = engine.evaluate("MATCH (n:Num) RETURN n.v AS v", use_views=False)
    assert sorted(v for (v,) in result.rows()) == sorted(values)
