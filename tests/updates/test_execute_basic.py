"""CREATE / DELETE / SET / REMOVE execution semantics."""

import pytest

from repro import PropertyGraph, QueryEngine
from repro.errors import CypherSemanticError, DanglingEdgeError, EvaluationError
from repro.graph.values import PathValue


@pytest.fixture
def engine():
    return QueryEngine(PropertyGraph())


class TestCreate:
    def test_single_node(self, engine):
        result = engine.execute("CREATE (n:Post {lang: 'en'})")
        assert result.summary.nodes_created == 1
        assert result.summary.labels_added == 1
        assert result.summary.properties_set == 1
        assert engine.graph.vertex_count == 1

    def test_create_returns_bindings(self, engine):
        result = engine.execute("CREATE (n:Post {lang: 'en'}) RETURN n.lang AS l")
        assert result.rows() == [("en",)]

    def test_create_path(self, engine):
        result = engine.execute(
            "CREATE (a:X)-[:R]->(b:Y)<-[:S]-(c:Z) RETURN a, b, c"
        )
        assert result.summary.nodes_created == 3
        assert result.summary.relationships_created == 2
        graph = engine.graph
        a, b, c = result.rows()[0]
        assert {graph.target_of(e) for e in graph.out_edges(a)} == {b}
        assert {graph.source_of(e) for e in graph.in_edges(b)} == {a, c}

    def test_create_reuses_bound_variable(self, engine):
        engine.execute("CREATE (a:X)")
        result = engine.execute("MATCH (a:X) CREATE (a)-[:R]->(b:Y) RETURN a, b")
        assert result.summary.nodes_created == 1
        assert engine.graph.vertex_count == 2

    def test_create_per_binding_row(self, engine):
        engine.execute("CREATE (a:X) CREATE (b:X)")
        result = engine.execute("MATCH (x:X) CREATE (c:C)-[:OF]->(x)")
        assert result.summary.nodes_created == 2
        assert result.summary.relationships_created == 2

    def test_variable_shared_across_parts(self, engine):
        result = engine.execute("CREATE (a:X), (a)-[:R]->(b:Y)")
        assert result.summary.nodes_created == 2

    def test_null_property_skipped(self, engine):
        result = engine.execute("CREATE (n:Post {lang: NULL}) RETURN n")
        assert result.summary.properties_set == 0
        (vertex,) = result.rows()[0]
        assert engine.graph.vertex_properties(vertex) == {}

    def test_named_path_in_create(self, engine):
        result = engine.execute("CREATE p = (a:X)-[:R]->(b:Y) RETURN p")
        (path,) = result.rows()[0]
        assert isinstance(path, PathValue)
        assert len(path.vertices) == 2

    def test_create_undirected_rejected(self, engine):
        with pytest.raises(CypherSemanticError):
            engine.execute("CREATE (a)-[:R]-(b)")

    def test_create_varlength_rejected(self, engine):
        with pytest.raises(CypherSemanticError):
            engine.execute("CREATE (a)-[:R*2]->(b)")

    def test_create_untyped_rejected(self, engine):
        with pytest.raises(CypherSemanticError):
            engine.execute("CREATE (a)-[]->(b)")

    def test_create_bound_single_node_rejected(self, engine):
        engine.execute("CREATE (a:X)")
        with pytest.raises(CypherSemanticError):
            engine.execute("MATCH (a:X) CREATE (a)")

    def test_bound_node_with_labels_rejected(self, engine):
        engine.execute("CREATE (a:X)")
        with pytest.raises(CypherSemanticError):
            engine.execute("MATCH (a:X) CREATE (a:Y)-[:R]->(b)")

    def test_create_with_parameters(self, engine):
        result = engine.execute(
            "CREATE (n:Post {lang: $lang}) RETURN n.lang AS l",
            parameters={"lang": "fr"},
        )
        assert result.rows() == [("fr",)]


class TestDelete:
    @pytest.fixture
    def populated(self, engine):
        engine.execute("CREATE (a:X {k: 1})-[:R]->(b:Y)-[:R]->(c:Z)")
        return engine

    def test_delete_edge(self, populated):
        result = populated.execute("MATCH (a:X)-[r:R]->() DELETE r")
        assert result.summary.relationships_deleted == 1
        assert populated.graph.edge_count == 1

    def test_delete_vertex_with_edges_fails(self, populated):
        with pytest.raises(DanglingEdgeError):
            populated.execute("MATCH (a:X) DELETE a")

    def test_failed_delete_rolls_back(self, populated):
        before = populated.graph.stats()
        with pytest.raises(DanglingEdgeError):
            # the edge delete would succeed, then the vertex delete fails
            populated.execute("MATCH (b:Y)-[r:R]->(c:Z) DELETE r, b")
        assert populated.graph.stats() == before

    def test_detach_delete(self, populated):
        result = populated.execute("MATCH (b:Y) DETACH DELETE b")
        assert result.summary.nodes_deleted == 1
        assert result.summary.relationships_deleted == 2
        assert populated.graph.edge_count == 0

    def test_delete_same_entity_twice_counts_once(self, populated):
        # relationship uniqueness is per MATCH clause, so two MATCHes can
        # bind the same edge to r and r2; deleting both deletes it once
        result = populated.execute(
            "MATCH (a:X)-[r:R]->() MATCH (a2:X)-[r2:R]->() DELETE r, r2"
        )
        assert result.summary.relationships_deleted == 1

    def test_edge_uniqueness_within_single_match(self, populated):
        # within one MATCH, r and r2 cannot bind the same relationship
        result = populated.execute(
            "MATCH (a:X)-[r:R]->(), (a2:X)-[r2:R]->() DELETE r, r2"
        )
        assert result.summary.relationships_deleted == 0

    def test_delete_null_is_noop(self, populated):
        result = populated.execute(
            "MATCH (a:X) OPTIONAL MATCH (a)-[r:MISSING]->() DELETE r"
        )
        assert result.summary.relationships_deleted == 0

    def test_delete_path_deletes_members(self, populated):
        result = populated.execute(
            "MATCH p = (a:X)-[:R*2]->(c:Z) DETACH DELETE p"
        )
        assert result.summary.nodes_deleted == 3
        assert populated.graph.vertex_count == 0

    def test_delete_value_rejected(self, populated):
        with pytest.raises(CypherSemanticError):
            populated.execute("MATCH (a:X) DELETE a.k")


class TestSet:
    @pytest.fixture
    def engine_with_node(self, engine):
        engine.execute("CREATE (n:Post {lang: 'en', views: 1})")
        return engine

    def test_set_property(self, engine_with_node):
        result = engine_with_node.execute("MATCH (n:Post) SET n.lang = 'de'")
        assert result.summary.properties_set == 1
        assert engine_with_node.evaluate(
            "MATCH (n:Post) RETURN n.lang AS l"
        ).rows() == [("de",)]

    def test_set_computed_from_self(self, engine_with_node):
        engine_with_node.execute("MATCH (n:Post) SET n.views = n.views + 10")
        assert engine_with_node.evaluate(
            "MATCH (n:Post) RETURN n.views AS v"
        ).rows() == [(11,)]

    def test_set_null_removes(self, engine_with_node):
        engine_with_node.execute("MATCH (n:Post) SET n.lang = NULL")
        assert engine_with_node.evaluate(
            "MATCH (n:Post) RETURN n.lang AS l"
        ).rows() == [(None,)]

    def test_set_labels(self, engine_with_node):
        result = engine_with_node.execute("MATCH (n:Post) SET n:Pinned:Hot")
        assert result.summary.labels_added == 2
        # re-setting is a no-op
        again = engine_with_node.execute("MATCH (n:Post) SET n:Pinned")
        assert again.summary.labels_added == 0

    def test_set_replace_properties(self, engine_with_node):
        engine_with_node.execute("MATCH (n:Post) SET n = {title: 'x'}")
        graph = engine_with_node.graph
        (vertex,) = graph.vertices("Post")
        assert graph.vertex_properties(vertex) == {"title": "x"}

    def test_set_merge_properties(self, engine_with_node):
        engine_with_node.execute("MATCH (n:Post) SET n += {title: 'x'}")
        graph = engine_with_node.graph
        (vertex,) = graph.vertices("Post")
        assert graph.vertex_properties(vertex) == {
            "lang": "en",
            "views": 1,
            "title": "x",
        }

    def test_set_edge_property(self, engine):
        engine.execute("CREATE (a:X)-[:R {w: 1}]->(b:Y)")
        engine.execute("MATCH ()-[r:R]->() SET r.w = 2")
        assert engine.evaluate("MATCH ()-[r:R]->() RETURN r.w AS w").rows() == [(2,)]

    def test_set_on_null_target_is_noop(self, engine):
        engine.execute("CREATE (a:X)")
        result = engine.execute(
            "MATCH (a:X) OPTIONAL MATCH (a)-[:R]->(m) SET m.x = 1"
        )
        assert result.summary.properties_set == 0

    def test_set_non_map_replace_rejected(self, engine_with_node):
        with pytest.raises(EvaluationError):
            engine_with_node.execute("MATCH (n:Post) SET n = 5")


class TestRemove:
    def test_remove_property(self, engine):
        engine.execute("CREATE (n:Post {lang: 'en'})")
        result = engine.execute("MATCH (n:Post) REMOVE n.lang")
        assert result.summary.properties_set == 1
        (vertex,) = engine.graph.vertices("Post")
        assert engine.graph.vertex_properties(vertex) == {}

    def test_remove_label(self, engine):
        engine.execute("CREATE (n:Post:Pinned)")
        result = engine.execute("MATCH (n:Post) REMOVE n:Pinned")
        assert result.summary.labels_removed == 1
        (vertex,) = engine.graph.vertices("Post")
        assert engine.graph.labels_of(vertex) == frozenset({"Post"})

    def test_remove_missing_label_noop(self, engine):
        engine.execute("CREATE (n:Post)")
        result = engine.execute("MATCH (n:Post) REMOVE n:Nope")
        assert result.summary.labels_removed == 0
