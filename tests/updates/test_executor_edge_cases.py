"""Edge cases of the update executor: scoping, renames, nulls, errors."""

import pytest

from repro import PropertyGraph, QueryEngine
from repro.errors import CypherSemanticError, EvaluationError


@pytest.fixture
def engine():
    return QueryEngine(PropertyGraph())


class TestWithScoping:
    def test_with_renames_then_set(self, engine):
        engine.execute("CREATE (a:X {v: 1})")
        engine.execute("MATCH (a:X) WITH a AS renamed SET renamed.v = 2")
        assert engine.evaluate("MATCH (a:X) RETURN a.v AS v").rows() == [(2,)]

    def test_with_drops_out_of_scope_variables(self, engine):
        engine.execute("CREATE (a:X {v: 1}), (b:Y)")
        with pytest.raises(Exception):
            # `b` is not carried through the WITH
            engine.execute("MATCH (a:X), (b:Y) WITH a SET b.v = 2")

    def test_with_computed_column_feeds_create(self, engine):
        engine.execute(
            "UNWIND [1, 2] AS i WITH i * i AS sq CREATE (n:Sq {v: sq})"
        )
        values = engine.evaluate("MATCH (n:Sq) RETURN n.v AS v").rows()
        assert sorted(v for (v,) in values) == [1, 4]

    def test_aggregate_then_merge(self, engine):
        engine.execute("UNWIND ['a', 'a', 'b'] AS t CREATE (x:Item {tag: t})")
        engine.execute(
            "MATCH (x:Item) WITH x.tag AS tag, count(*) AS n "
            "MERGE (s:Stat {tag: tag}) SET s.n = n"
        )
        rows = engine.evaluate(
            "MATCH (s:Stat) RETURN s.tag AS t, s.n AS n"
        ).rows()
        assert sorted(rows) == [("a", 2), ("b", 1)]


class TestNullHandling:
    def test_set_via_null_binding_skips(self, engine):
        engine.execute("CREATE (a:X)")
        result = engine.execute(
            "MATCH (a:X) OPTIONAL MATCH (a)-[:R]->(m) "
            "SET m.v = 1 REMOVE m.v, m:Gone"
        )
        assert not result.summary.contains_updates

    def test_merge_with_null_property_rejected(self, engine):
        # {k: null} can never match; silently creating would grow the graph
        # on every re-run, so MERGE errors out (Neo4j semantics)
        engine.execute("CREATE (t:Tag)")
        with pytest.raises(EvaluationError):
            engine.execute("MERGE (t:Tag {name: $p}) RETURN t", {"p": None})
        assert engine.graph.vertex_count == 1  # nothing created


class TestErrorPaths:
    def test_set_on_unbound_variable(self, engine):
        with pytest.raises(CypherSemanticError):
            engine.execute("CREATE (a:X) SET zzz.v = 1")

    def test_set_on_non_entity(self, engine):
        with pytest.raises(EvaluationError):
            engine.execute("UNWIND [1] AS i SET i.v = 2")

    def test_delete_scalar_rejected(self, engine):
        with pytest.raises(CypherSemanticError):
            engine.execute("UNWIND [1] AS i DELETE i")

    def test_error_in_later_row_rolls_back_earlier_rows(self, engine):
        engine.execute("CREATE (a:X {v: 1}), (b:X {v: 'not-a-number'})")
        before = {
            row
            for row in engine.evaluate("MATCH (x:X) RETURN x.v AS v").rows()
        }
        with pytest.raises(EvaluationError):
            # v * 2 works for the first row, fails on the string row
            engine.execute("MATCH (x:X) SET x.v = x.v * 2")
        after = {
            row for row in engine.evaluate("MATCH (x:X) RETURN x.v AS v").rows()
        }
        assert after == before

    def test_missing_parameter_raises(self, engine):
        with pytest.raises(EvaluationError):
            engine.execute("CREATE (n:X {v: $missing})")


class TestReturnShapes:
    def test_return_expression_column_names(self, engine):
        result = engine.execute("CREATE (n:X {v: 3}) RETURN n.v + 1 AS w, n.v")
        assert result.table.columns == ("w", "n.v")
        assert result.rows() == [(4, 3)]

    def test_duplicate_return_columns_rejected(self, engine):
        with pytest.raises(CypherSemanticError):
            engine.execute("CREATE (n:X) RETURN n AS a, n AS a")

    def test_count_star_on_empty_match(self, engine):
        result = engine.execute(
            "MERGE (x:Anchor) WITH x MATCH (y:Missing) RETURN count(*) AS n"
        )
        assert result.rows() == [(0,)]
