"""Direct unit tests for the per-row pattern matcher.

The matcher is also tested end-to-end through update statements; these
tests pin its contract in isolation: candidate enumeration, bound-variable
constraints, relationship uniqueness, variable-length semantics, and
agreement with the compiled read pipeline on identical patterns.
"""

import pytest

from repro import PropertyGraph, QueryEngine
from repro.algebra.expressions import EvalContext
from repro.algebra.schema import AttrKind, Attribute, Schema
from repro.cypher import ast
from repro.cypher.parser import parse
from repro.errors import CypherSemanticError
from repro.eval.interpreter import GraphResolver
from repro.graph.values import ListValue, PathValue
from repro.updates.matcher import (
    PatternMatcher,
    binding_kind,
    check_no_bound_reuse_conflicts,
    pattern_bindings,
)

EMPTY = Schema(())
CTX = EvalContext({})


def pattern_of(query: str) -> ast.Pattern:
    """The MATCH pattern of *query* (parse helper)."""
    tree = parse(query + " RETURN 1 AS one" if "RETURN" not in query else query)
    clause = tree.clauses[0]
    assert isinstance(clause, ast.MatchClause)
    return clause.pattern


def where_of(query: str):
    tree = parse(query + " RETURN 1 AS one")
    return tree.clauses[0].where


@pytest.fixture
def diamond():
    """a -> b -> d, a -> c -> d plus labels and properties."""
    graph = PropertyGraph()
    a = graph.add_vertex(labels=["Start"], properties={"k": 1})
    b = graph.add_vertex(labels=["Mid"], properties={"k": 2})
    c = graph.add_vertex(labels=["Mid"], properties={"k": 3})
    d = graph.add_vertex(labels=["Leaf"], properties={"k": 4})
    e1 = graph.add_edge(a, b, "R", properties={"w": 1})
    e2 = graph.add_edge(a, c, "R", properties={"w": 2})
    e3 = graph.add_edge(b, d, "R")
    e4 = graph.add_edge(c, d, "R")
    return graph, (a, b, c, d), (e1, e2, e3, e4)


def expand(graph, pattern_text, schema=EMPTY, row=(), where=None):
    matcher = PatternMatcher(
        graph, pattern_of(pattern_text), schema, GraphResolver(graph), where
    )
    return matcher, sorted(matcher.expand(row, CTX), key=repr)


class TestBindingHelpers:
    def test_binding_kinds(self):
        pattern = pattern_of("MATCH p = (a)-[r:R]->(b)-[rs:R*]->(c)")
        part = pattern.parts[0]
        kinds = {e.variable: binding_kind(e) for e in part.elements if e.variable}
        assert kinds["a"] is AttrKind.VERTEX
        assert kinds["r"] is AttrKind.EDGE
        assert kinds["rs"] is AttrKind.VALUE  # list of edges
        names = [a.name for a in pattern_bindings(pattern, frozenset())]
        assert names == ["a", "r", "b", "rs", "c", "p"]

    def test_bound_names_excluded(self):
        pattern = pattern_of("MATCH (a)-[r:R]->(b)")
        names = [a.name for a in pattern_bindings(pattern, frozenset({"a"}))]
        assert names == ["r", "b"]

    def test_reuse_conflict_detected(self):
        pattern = pattern_of("MATCH (r)-[x:R]->(b)")
        with pytest.raises(CypherSemanticError):
            check_no_bound_reuse_conflicts(pattern, {"r": AttrKind.EDGE})


class TestNodeMatching:
    def test_label_scan(self, diamond):
        graph, (a, b, c, d), _ = diamond
        _, rows = expand(graph, "MATCH (m:Mid)")
        assert rows == sorted([(b,), (c,)], key=repr)

    def test_property_map_filter(self, diamond):
        graph, (a, b, c, d), _ = diamond
        _, rows = expand(graph, "MATCH (m:Mid {k: 3})")
        assert rows == [(c,)]

    def test_unlabeled_scan(self, diamond):
        graph, vertices, _ = diamond
        _, rows = expand(graph, "MATCH (x)")
        assert len(rows) == 4

    def test_bound_variable_restricts(self, diamond):
        graph, (a, b, c, d), _ = diamond
        schema = Schema([Attribute("m", AttrKind.VERTEX)])
        matcher = PatternMatcher(
            graph, pattern_of("MATCH (m:Mid)"), schema, GraphResolver(graph)
        )
        assert list(matcher.expand((b,), CTX)) == [(b,)]
        assert list(matcher.expand((a,), CTX)) == []  # a is not :Mid

    def test_null_bound_variable_matches_nothing(self, diamond):
        graph, *_ = diamond
        schema = Schema([Attribute("m", AttrKind.VERTEX)])
        matcher = PatternMatcher(
            graph, pattern_of("MATCH (m:Mid)"), schema, GraphResolver(graph)
        )
        assert list(matcher.expand((None,), CTX)) == []


class TestRelationshipMatching:
    def test_out_direction(self, diamond):
        graph, (a, b, c, d), _ = diamond
        _, rows = expand(graph, "MATCH (s:Start)-[:R]->(x)")
        assert {row[1] for row in rows} == {b, c}

    def test_in_direction(self, diamond):
        graph, (a, b, c, d), _ = diamond
        _, rows = expand(graph, "MATCH (e:Leaf)<-[:R]-(x)")
        assert {row[1] for row in rows} == {b, c}

    def test_undirected(self, diamond):
        graph, (a, b, c, d), _ = diamond
        _, rows = expand(graph, "MATCH (m:Mid {k: 2})-[:R]-(x)")
        assert {row[1] for row in rows} == {a, d}

    def test_edge_property_map(self, diamond):
        graph, (a, b, c, d), edges = diamond
        _, rows = expand(graph, "MATCH (s:Start)-[r:R {w: 2}]->(x)")
        assert rows == [(a, edges[1], c)]

    def test_edge_uniqueness_within_pattern(self, diamond):
        graph, _, _ = diamond
        # a two-hop path cannot reuse one edge, and the two branch edges
        # of the diamond cannot satisfy (x)-[r]->(y)-[r2]->(x) cycles
        _, rows = expand(graph, "MATCH (x)-[r:R]->(y)-[r2:R]->(z)")
        assert len(rows) == 2  # a->b->d and a->c->d
        for row in rows:
            assert row[1] != row[3]

    def test_type_filter(self, diamond):
        graph, *_ = diamond
        _, rows = expand(graph, "MATCH (x)-[:MISSING]->(y)")
        assert rows == []

    def test_where_applies(self, diamond):
        graph, (a, b, c, d), _ = diamond
        matcher, rows = expand(
            graph,
            "MATCH (s)-[:R]->(x)",
            where=where_of("MATCH (s)-[:R]->(x) WHERE x.k > 2"),
        )
        assert {row[1] for row in rows} == {c, d}


class TestVarLength:
    def test_trails_and_path_binding(self, diamond):
        graph, (a, b, c, d), _ = diamond
        _, rows = expand(graph, "MATCH t = (s:Start)-[:R*]->(e:Leaf)")
        # two trails a->b->d and a->c->d
        assert len(rows) == 2
        for row in rows:
            path = row[-1]
            assert isinstance(path, PathValue)
            assert path.start == a and path.end == d

    def test_relationship_list_binding(self, diamond):
        graph, (a, b, c, d), _ = diamond
        _, rows = expand(graph, "MATCH (s:Start)-[rs:R*2]->(e:Leaf)")
        for row in rows:
            rs = row[1]
            assert isinstance(rs, ListValue)
            assert len(rs) == 2

    def test_hop_bounds(self, diamond):
        graph, *_ = diamond
        _, one_hop = expand(graph, "MATCH (s:Start)-[:R*1..1]->(x)")
        assert len(one_hop) == 2
        _, up_to_two = expand(graph, "MATCH (s:Start)-[:R*1..2]->(x)")
        assert len(up_to_two) == 4

    def test_zero_length(self, diamond):
        graph, (a, *_), _ = diamond
        _, rows = expand(graph, "MATCH (s:Start)-[:R*0..1]->(x)")
        assert (a, a) in rows  # the empty trail

    def test_uniqueness_against_single_edges(self, diamond):
        graph, _, _ = diamond
        # the single edge binds one diamond edge; the var-length segment
        # must avoid it
        _, rows = expand(graph, "MATCH (x)-[r:R]->(y)-[rs:R*]->(z)")
        for row in rows:
            assert row[1] not in set(row[3])


class TestAgainstCompiledPipeline:
    QUERIES = [
        "MATCH (x)-[r:R]->(y) RETURN x, r, y",
        "MATCH (s:Start)-[:R]->(m)-[:R]->(e) RETURN s, m, e",
        "MATCH (s:Start)-[:R*1..3]->(x) RETURN s, x",
        "MATCH (m:Mid) WHERE m.k > 2 RETURN m",
        "MATCH (x)-[:R]-(y) RETURN x, y",
        "MATCH (x) WHERE x.k IN [1, 3] RETURN x",
        "MATCH (x)-[r:R]->(y) WHERE r.w IS NOT NULL RETURN x, y",
        "MATCH (m) WHERE size(labels(m)) = 1 RETURN m",
        "MATCH (x)-[:R]->(y) WHERE NOT (y.k = 4) RETURN x, y",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_matcher_agrees_with_interpreter(self, diamond, query):
        graph, *_ = diamond
        engine = QueryEngine(graph)
        oracle = sorted(engine.evaluate(query).rows(), key=repr)
        tree = parse(query)
        clause = tree.clauses[0]
        matcher = PatternMatcher(
            graph, clause.pattern, EMPTY, GraphResolver(graph), clause.where
        )
        names = list(matcher.output_schema.names)
        wanted = [
            item.expression.name for item in tree.return_clause.body.items
        ]
        indices = [names.index(w) for w in wanted]
        mine = sorted(
            (tuple(row[i] for i in indices) for row in matcher.expand((), CTX)),
            key=repr,
        )
        assert mine == oracle
