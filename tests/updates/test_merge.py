"""MERGE semantics: match-or-create, ON CREATE / ON MATCH, per-row visibility."""

import pytest

from repro import PropertyGraph, QueryEngine
from repro.errors import CypherSemanticError


@pytest.fixture
def engine():
    return QueryEngine(PropertyGraph())


class TestMergeNode:
    def test_creates_when_absent(self, engine):
        result = engine.execute("MERGE (t:Tag {name: 'x'}) RETURN t")
        assert result.summary.nodes_created == 1
        assert engine.graph.vertex_count == 1

    def test_matches_when_present(self, engine):
        engine.execute("CREATE (t:Tag {name: 'x'})")
        result = engine.execute("MERGE (t:Tag {name: 'x'}) RETURN t")
        assert result.summary.nodes_created == 0
        assert engine.graph.vertex_count == 1

    def test_property_mismatch_creates(self, engine):
        engine.execute("CREATE (t:Tag {name: 'x'})")
        engine.execute("MERGE (t:Tag {name: 'y'})")
        assert engine.graph.vertex_count == 2

    def test_merge_sees_own_creations_across_rows(self, engine):
        engine.execute("UNWIND [1, 2, 3] AS i MERGE (t:Tag {name: 'only'})")
        assert engine.graph.vertex_count == 1

    def test_merge_matches_all_rows(self, engine):
        engine.execute("CREATE (a:Tag {name: 'x', id: 1})")
        engine.execute("CREATE (b:Tag {name: 'x', id: 2})")
        result = engine.execute("MERGE (t:Tag {name: 'x'}) RETURN t.id AS i")
        assert sorted(r[0] for r in result.rows()) == [1, 2]

    def test_on_create_set(self, engine):
        engine.execute(
            "MERGE (t:Tag {name: 'x'}) ON CREATE SET t.created = TRUE"
        )
        assert engine.evaluate(
            "MATCH (t:Tag) RETURN t.created AS c"
        , use_views=False).rows() == [(True,)]

    def test_on_match_set(self, engine):
        engine.execute("CREATE (t:Tag {name: 'x', hits: 0})")
        engine.execute("MERGE (t:Tag {name: 'x'}) ON MATCH SET t.hits = t.hits + 1")
        assert engine.evaluate("MATCH (t:Tag) RETURN t.hits AS h", use_views=False).rows() == [(1,)]

    def test_on_create_not_applied_on_match(self, engine):
        engine.execute("CREATE (t:Tag {name: 'x'})")
        engine.execute("MERGE (t:Tag {name: 'x'}) ON CREATE SET t.created = TRUE")
        assert engine.evaluate(
            "MATCH (t:Tag) RETURN t.created AS c"
        , use_views=False).rows() == [(None,)]


class TestMergeRelationship:
    @pytest.fixture
    def engine_pair(self, engine):
        engine.execute("CREATE (a:A {k: 1}), (b:B {k: 2})")
        return engine

    def test_creates_relationship(self, engine_pair):
        result = engine_pair.execute(
            "MATCH (a:A), (b:B) MERGE (a)-[r:KNOWS]->(b) RETURN r"
        )
        assert result.summary.relationships_created == 1

    def test_idempotent(self, engine_pair):
        for _ in range(3):
            engine_pair.execute("MATCH (a:A), (b:B) MERGE (a)-[:KNOWS]->(b)")
        assert engine_pair.graph.edge_count == 1

    def test_direction_respected(self, engine_pair):
        engine_pair.execute("MATCH (a:A), (b:B) MERGE (a)-[:KNOWS]->(b)")
        engine_pair.execute("MATCH (a:A), (b:B) MERGE (b)-[:KNOWS]->(a)")
        assert engine_pair.graph.edge_count == 2

    def test_merge_longer_path_all_or_nothing(self, engine_pair):
        # (a)-[:R]->(m:M)-[:R]->(b) does not exist: whole pattern created
        result = engine_pair.execute(
            "MATCH (a:A), (b:B) MERGE (a)-[:R]->(m:M)-[:R]->(b) RETURN m"
        )
        assert result.summary.nodes_created == 1
        assert result.summary.relationships_created == 2
        # now it exists: nothing created
        again = engine_pair.execute(
            "MATCH (a:A), (b:B) MERGE (a)-[:R]->(m:M)-[:R]->(b) RETURN m"
        )
        assert not again.summary.contains_updates

    def test_partial_pattern_still_creates_whole(self, engine_pair):
        engine_pair.execute("MATCH (a:A) CREATE (a)-[:R]->(m:M)")
        # half the pattern exists; MERGE must create the *whole* pattern anew
        result = engine_pair.execute(
            "MATCH (a:A), (b:B) MERGE (a)-[:R]->(m:M)-[:R]->(b)"
        )
        assert result.summary.nodes_created == 1
        assert result.summary.relationships_created == 2

    def test_merge_undirected_rejected(self, engine_pair):
        with pytest.raises(CypherSemanticError):
            engine_pair.execute("MATCH (a:A), (b:B) MERGE (a)-[:KNOWS]-(b)")

    def test_merge_varlength_rejected(self, engine_pair):
        with pytest.raises(CypherSemanticError):
            engine_pair.execute("MATCH (a:A), (b:B) MERGE (a)-[:KNOWS*2]->(b)")

    def test_merge_drives_live_views(self, engine_pair):
        view = engine_pair.register("MATCH (a:A)-[:KNOWS]->(b:B) RETURN a, b")
        assert view.rows() == []
        engine_pair.execute("MATCH (a:A), (b:B) MERGE (a)-[:KNOWS]->(b)")
        assert len(view.rows()) == 1
        engine_pair.execute("MATCH (a:A), (b:B) MERGE (a)-[:KNOWS]->(b)")
        assert len(view.rows()) == 1  # idempotent
