"""Parsing and unparsing of updating clauses."""

import pytest

from repro.cypher import ast
from repro.cypher.parser import parse
from repro.cypher.unparser import unparse
from repro.errors import CypherSyntaxError, UnsupportedFeatureError


def roundtrips(text: str) -> ast.AstNode:
    tree = parse(text)
    assert parse(unparse(tree)) == tree
    return tree


class TestCreate:
    def test_create_single_node(self):
        tree = roundtrips("CREATE (n:Post {lang: 'en'})")
        assert isinstance(tree, ast.UpdatingQuery)
        assert tree.return_clause is None
        (clause,) = tree.clauses
        assert isinstance(clause, ast.CreateClause)

    def test_create_with_return(self):
        tree = roundtrips("CREATE (n:Post) RETURN n")
        assert isinstance(tree, ast.UpdatingQuery)
        assert tree.return_clause is not None

    def test_create_relationship_pattern(self):
        tree = roundtrips("CREATE (a)-[r:REPLY {w: 1}]->(b)")
        clause = tree.clauses[0]
        part = clause.pattern.parts[0]
        rel = part.relationships[0]
        assert rel.types == ("REPLY",)
        assert rel.direction == "out"

    def test_create_multiple_parts(self):
        tree = roundtrips("CREATE (a:X), (b:Y), (a)-[:Z]->(b)")
        assert len(tree.clauses[0].pattern.parts) == 3

    def test_match_create(self):
        tree = roundtrips("MATCH (p:Post) CREATE (c:Comm)-[:REPLY]->(p)")
        assert isinstance(tree.clauses[0], ast.MatchClause)
        assert isinstance(tree.clauses[1], ast.CreateClause)


class TestDelete:
    def test_delete(self):
        tree = roundtrips("MATCH (n:Tag) DELETE n")
        clause = tree.clauses[1]
        assert isinstance(clause, ast.DeleteClause)
        assert not clause.detach

    def test_detach_delete(self):
        tree = roundtrips("MATCH (n) DETACH DELETE n")
        assert tree.clauses[1].detach

    def test_delete_multiple_targets(self):
        tree = roundtrips("MATCH (a)-[r]->(b) DELETE r, a, b")
        assert len(tree.clauses[1].expressions) == 3


class TestSet:
    def test_set_property(self):
        tree = roundtrips("MATCH (n) SET n.lang = 'de'")
        item = tree.clauses[1].items[0]
        assert isinstance(item, ast.SetProperty)
        assert item.target.key == "lang"

    def test_set_labels(self):
        tree = roundtrips("MATCH (n) SET n:Pinned:Hot")
        item = tree.clauses[1].items[0]
        assert isinstance(item, ast.SetLabels)
        assert item.labels == ("Pinned", "Hot")

    def test_set_properties_replace(self):
        tree = roundtrips("MATCH (n) SET n = {a: 1}")
        item = tree.clauses[1].items[0]
        assert isinstance(item, ast.SetProperties)
        assert not item.merge

    def test_set_properties_merge(self):
        tree = roundtrips("MATCH (n) SET n += {a: 1}")
        item = tree.clauses[1].items[0]
        assert isinstance(item, ast.SetProperties)
        assert item.merge

    def test_set_multiple_items(self):
        tree = roundtrips("MATCH (n) SET n.a = 1, n:L, n += {b: 2}")
        assert len(tree.clauses[1].items) == 3


class TestRemove:
    def test_remove_property(self):
        tree = roundtrips("MATCH (n) REMOVE n.lang")
        item = tree.clauses[1].items[0]
        assert isinstance(item, ast.RemoveProperty)

    def test_remove_labels(self):
        tree = roundtrips("MATCH (n) REMOVE n:Pinned")
        item = tree.clauses[1].items[0]
        assert isinstance(item, ast.RemoveLabels)


class TestMerge:
    def test_merge_plain(self):
        tree = roundtrips("MERGE (t:Tag {name: 'x'})")
        clause = tree.clauses[0]
        assert isinstance(clause, ast.MergeClause)
        assert clause.on_create == () and clause.on_match == ()

    def test_merge_with_actions(self):
        tree = roundtrips(
            "MERGE (t:Tag {name: 'x'}) "
            "ON CREATE SET t.n = 1 ON MATCH SET t.n = t.n + 1"
        )
        clause = tree.clauses[0]
        assert len(clause.on_create) == 1
        assert len(clause.on_match) == 1

    def test_merge_relationship(self):
        tree = roundtrips("MATCH (a:X), (b:Y) MERGE (a)-[r:KNOWS]->(b) RETURN r")
        clause = tree.clauses[1]
        assert isinstance(clause, ast.MergeClause)


class TestErrors:
    def test_reading_query_unchanged(self):
        tree = parse("MATCH (n) RETURN n")
        assert isinstance(tree, ast.Query)

    def test_update_without_trailing_return_or_update_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse("CREATE (n) MATCH (m)")

    def test_union_of_updates_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("CREATE (n) UNION CREATE (m)")

    def test_bare_match_still_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (n)")

    def test_set_needs_assignment(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (n) SET n.x")

    def test_remove_rejects_arbitrary_expression(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (n) REMOVE 1 + 2")

    def test_compile_query_rejects_updates(self):
        from repro import compile_query
        from repro.errors import CypherSemanticError

        with pytest.raises(CypherSemanticError):
            compile_query("CREATE (n:Post)")
