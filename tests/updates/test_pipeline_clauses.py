"""Reading clauses inside updating queries: UNWIND, WITH, OPTIONAL MATCH,
aggregation, RETURN modifiers — plus end-to-end view integration."""

import pytest

from repro import PropertyGraph, QueryEngine
from repro.errors import CypherSemanticError
from repro.graph.values import ListValue


@pytest.fixture
def engine():
    return QueryEngine(PropertyGraph())


class TestUnwind:
    def test_unwind_create(self, engine):
        result = engine.execute(
            "UNWIND ['en', 'de', 'fr'] AS lang CREATE (p:Post {lang: lang})"
        )
        assert result.summary.nodes_created == 3

    def test_unwind_null_produces_no_rows(self, engine):
        result = engine.execute("UNWIND NULL AS x CREATE (p:Post)")
        assert result.summary.nodes_created == 0

    def test_unwind_scalar_single_row(self, engine):
        result = engine.execute("UNWIND 5 AS x CREATE (p:Post {v: x})")
        assert result.summary.nodes_created == 1

    def test_unwind_rebinding_rejected(self, engine):
        with pytest.raises(CypherSemanticError):
            engine.execute("UNWIND [1] AS x UNWIND [2] AS x CREATE (p:Post)")


class TestWith:
    def test_with_projects_bindings(self, engine):
        engine.execute("UNWIND [1, 2, 3] AS i CREATE (p:Post {v: i})")
        result = engine.execute(
            "MATCH (p:Post) WITH p.v * 10 AS scaled CREATE (q:Scaled {v: scaled})"
        )
        assert result.summary.nodes_created == 3
        values = engine.evaluate("MATCH (q:Scaled) RETURN q.v AS v", use_views=False).rows()
        assert sorted(v for (v,) in values) == [10, 20, 30]

    def test_with_where_filters(self, engine):
        engine.execute("UNWIND [1, 2, 3, 4] AS i CREATE (p:Post {v: i})")
        result = engine.execute(
            "MATCH (p:Post) WITH p WHERE p.v > 2 SET p:Big"
        )
        assert result.summary.labels_added == 2

    def test_with_aggregate_group(self, engine):
        engine.execute(
            "UNWIND [['en', 1], ['en', 2], ['de', 3]] AS row "
            "CREATE (p:Post {lang: row[0], v: row[1]})"
        )
        engine.execute(
            "MATCH (p:Post) WITH p.lang AS lang, count(*) AS n "
            "CREATE (s:Stat {lang: lang, n: n})"
        )
        rows = engine.evaluate(
            "MATCH (s:Stat) RETURN s.lang AS lang, s.n AS n"
        , use_views=False).rows()
        assert sorted(rows) == [("de", 1), ("en", 2)]

    def test_with_distinct(self, engine):
        engine.execute("UNWIND [1, 1, 2] AS i CREATE (p:Post {v: i})")
        result = engine.execute(
            "MATCH (p:Post) WITH DISTINCT p.v AS v CREATE (d:D {v: v})"
        )
        assert result.summary.nodes_created == 2

    def test_with_limit_orders_first(self, engine):
        engine.execute("UNWIND [3, 1, 2] AS i CREATE (p:Post {v: i})")
        engine.execute(
            "MATCH (p:Post) WITH p ORDER BY p.v LIMIT 1 SET p:Smallest"
        )
        assert engine.evaluate(
            "MATCH (p:Smallest) RETURN p.v AS v"
        , use_views=False).rows() == [(1,)]


class TestOptionalMatch:
    def test_optional_preserves_row(self, engine):
        engine.execute("CREATE (a:A)")
        result = engine.execute(
            "MATCH (a:A) OPTIONAL MATCH (a)-[:R]->(m) "
            "CREATE (log:Log {found: m IS NOT NULL})"
        )
        assert result.summary.nodes_created == 1
        assert engine.evaluate(
            "MATCH (l:Log) RETURN l.found AS f"
        , use_views=False).rows() == [(False,)]


class TestReturnModifiers:
    def test_return_order_by_desc_limit(self, engine):
        engine.execute("UNWIND [1, 2, 3] AS i CREATE (p:Post {v: i})")
        result = engine.execute(
            "MATCH (p:Post) SET p.v = p.v * 2 "
            "RETURN p.v AS v ORDER BY v DESC LIMIT 2"
        )
        assert result.rows() == [(6,), (4,)]

    def test_return_aggregate(self, engine):
        result = engine.execute(
            "UNWIND [1, 2, 3] AS i CREATE (p:Post {v: i}) "
            "RETURN count(*) AS n, sum(i) AS total"
        )
        assert result.rows() == [(3, 6)]

    def test_return_collect(self, engine):
        result = engine.execute(
            "UNWIND [2, 1] AS i CREATE (p:Post {v: i}) RETURN collect(i) AS vs"
        )
        ((collected,),) = result.rows()
        assert isinstance(collected, ListValue)
        assert sorted(collected) == [1, 2]

    def test_return_distinct(self, engine):
        result = engine.execute(
            "UNWIND [1, 1, 2] AS i MERGE (p:Post {v: i}) RETURN DISTINCT i"
        )
        assert sorted(result.rows()) == [(1,), (2,)]


class TestViewIntegration:
    def test_update_stream_keeps_views_consistent(self, engine):
        view = engine.register(
            "MATCH (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang "
            "RETURN p, c"
        )
        engine.execute("CREATE (p:Post {lang: 'en'})")
        engine.execute(
            "MATCH (p:Post) CREATE (p)<-[:REPLY]-(c:Comm {lang: 'en'})"
        )
        assert view.rows() == []  # REPLY points Comm -> Post, pattern is Post -> Comm
        engine.execute("MATCH (c:Comm) MATCH (p:Post) CREATE (p)-[:REPLY]->(c)")
        assert len(view.rows()) == 1
        engine.execute("MATCH (c:Comm) SET c.lang = 'hu'")
        assert view.rows() == []
        engine.execute("MATCH (c:Comm) SET c.lang = 'en'")
        assert len(view.rows()) == 1
        engine.execute("MATCH (c:Comm) DETACH DELETE c")
        assert view.rows() == []

    def test_incremental_matches_recompute_after_updates(self, engine):
        query = (
            "MATCH (p:Post)-[:REPLY]->(c:Comm) "
            "RETURN p.lang AS pl, c.lang AS cl"
        )
        view = engine.register(query)
        statements = [
            "CREATE (p:Post {lang: 'en'})-[:REPLY]->(c:Comm {lang: 'en'})",
            "CREATE (p:Post {lang: 'de'})-[:REPLY]->(c:Comm {lang: 'en'})",
            "MATCH (c:Comm {lang: 'en'}) SET c.lang = 'de'",
            "MATCH (p:Post {lang: 'en'})-[r:REPLY]->() DELETE r",
            "MATCH (p:Post) MATCH (c:Comm) MERGE (p)-[:REPLY]->(c)",
        ]
        for statement in statements:
            engine.execute(statement)
            assert sorted(view.rows()) == sorted(engine.evaluate(query, use_views=False).rows())
