"""Multi-statement scripts: parsing, sequencing, atomicity."""

import pytest

from repro import PropertyGraph, QueryEngine
from repro.cypher import ast
from repro.cypher.parser import parse_script
from repro.errors import CypherSyntaxError, DanglingEdgeError


@pytest.fixture
def engine():
    return QueryEngine(PropertyGraph())


class TestParseScript:
    def test_splits_statements(self):
        statements = parse_script(
            "CREATE (a:X); MATCH (a:X) RETURN a; MATCH (a:X) DELETE a"
        )
        assert len(statements) == 3
        assert isinstance(statements[0], ast.UpdatingQuery)
        assert isinstance(statements[1], ast.Query)
        assert isinstance(statements[2], ast.UpdatingQuery)

    def test_tolerates_stray_semicolons(self):
        statements = parse_script(";;CREATE (a:X);;  ;")
        assert len(statements) == 1

    def test_empty_script_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse_script("  ;;  ")

    def test_union_inside_script(self):
        statements = parse_script(
            "MATCH (a:X) RETURN a UNION MATCH (b:Y) RETURN b AS a; CREATE (c:Z)"
        )
        assert len(statements) == 2


class TestExecuteScript:
    def test_statements_see_prior_writes(self, engine):
        results = engine.execute_script(
            """
            CREATE (p:Post {lang: 'en'});
            MATCH (p:Post) SET p.lang = 'de';
            MATCH (p:Post) RETURN p.lang AS lang;
            """
        )
        assert len(results) == 3
        assert results[2].rows() == [("de",)]

    def test_returns_one_result_per_statement(self, engine):
        results = engine.execute_script("CREATE (a:X); CREATE (b:X)")
        assert [r.summary.nodes_created for r in results] == [1, 1]

    def test_failure_rolls_back_whole_script(self, engine):
        view = engine.register("MATCH (p:Post) RETURN p.lang AS lang")
        engine.execute("CREATE (a:Post {lang: 'en'})-[:R]->(b:Other)")
        with pytest.raises(DanglingEdgeError):
            engine.execute_script(
                "CREATE (x:Post {lang: 'xx'}); "
                "MATCH (p:Post {lang: 'en'}) DELETE p"
            )
        assert view.rows() == [("en",)]
        assert engine.graph.vertex_count == 2

    def test_read_only_script(self, engine):
        engine.execute("CREATE (a:X {v: 1}), (b:X {v: 2})")
        results = engine.execute_script(
            "MATCH (a:X) RETURN count(*) AS n; MATCH (a:X) RETURN a.v AS v"
        )
        assert results[0].rows() == [(2,)]
        assert sorted(results[1].rows()) == [(1,), (2,)]
        assert not any(r.summary.contains_updates for r in results)

    def test_script_drives_views_incrementally(self, engine):
        view = engine.register(
            "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c"
        )
        engine.execute_script(
            """
            CREATE (p:Post {lang: 'en'});
            MATCH (p:Post) CREATE (p)-[:REPLY]->(c:Comm {lang: 'en'});
            """
        )
        assert len(view.rows()) == 1

    def test_parameters_shared_across_statements(self, engine):
        results = engine.execute_script(
            "CREATE (p:Post {lang: $lang}); MATCH (p:Post) RETURN p.lang AS l",
            parameters={"lang": "hu"},
        )
        assert results[1].rows() == [("hu",)]
