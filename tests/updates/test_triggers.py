"""Triggers: view change-callbacks issuing follow-up write queries."""

import pytest

from repro import PropertyGraph, QueryEngine
from repro.errors import EvaluationError


@pytest.fixture
def engine():
    return QueryEngine(PropertyGraph())


class TestTriggers:
    def test_trigger_writes_join_outer_transaction(self, engine):
        watched = engine.register("MATCH (p:Post) RETURN p.lang AS lang")
        reactions = engine.register("MATCH (a:Alert) RETURN a.lang AS lang")

        def react(delta):
            for (lang,), multiplicity in delta.items():
                if multiplicity > 0 and lang == "spam":
                    engine.execute(
                        "CREATE (a:Alert {lang: $lang})",
                        parameters={"lang": lang},
                    )

        watched.on_change(react)
        engine.execute("CREATE (p:Post {lang: 'en'})")
        assert reactions.rows() == []
        engine.execute("CREATE (p:Post {lang: 'spam'})")
        assert reactions.rows() == [("spam",)]

    def test_failed_outer_rolls_back_trigger_writes(self, engine):
        watched = engine.register("MATCH (p:Post) RETURN p")

        def react(delta):
            # a well-formed trigger reacts to *insertions*; compensation
            # deltas during rollback have negative multiplicities
            if any(m > 0 for _, m in delta.items()):
                engine.execute("CREATE (a:Alert)")

        watched.on_change(react)
        # the CREATE fires the trigger, then DELETE of a still-connected
        # vertex fails -> the whole statement, trigger writes included,
        # must roll back
        engine.execute("CREATE (x:Post)-[:R]->(y:Other)")
        vertices_before = engine.graph.stats()["vertices"]
        from repro.errors import DanglingEdgeError

        with pytest.raises(DanglingEdgeError):
            engine.execute("CREATE (p:Post) WITH p MATCH (x:Post)-[:R]->() DELETE x")
        assert engine.graph.stats()["vertices"] == vertices_before
        assert sorted(watched.rows(), key=repr) == sorted(
            engine.evaluate("MATCH (p:Post) RETURN p", use_views=False).rows(), key=repr
        )

    def test_trigger_cascade_two_levels(self, engine):
        level1 = engine.register("MATCH (a:A) RETURN a")
        level2 = engine.register("MATCH (b:B) RETURN b")
        level1.on_change(lambda d: engine.execute("CREATE (b:B)"))
        level2.on_change(lambda d: engine.execute("CREATE (c:C)"))
        engine.execute("CREATE (a:A)")
        assert engine.evaluate("MATCH (c:C) RETURN count(*) AS n", use_views=False).rows() == [(1,)]


class TestProfile:
    def test_profile_lists_nodes_and_traffic(self, engine):
        view = engine.register(
            "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c"
        )
        engine.execute(
            "CREATE (p:Post {lang: 'en'})-[:REPLY]->(c:Comm {lang: 'en'})"
        )
        text = view.profile()
        assert "Join" in text
        assert "Production" in text
        assert "(shared)" in text
        # traffic column reflects the insertion
        assert any(
            line.split()[-3] != "0" for line in text.splitlines()[2:]
        )

    def test_emit_counters_accumulate(self, engine):
        view = engine.register("MATCH (p:Post) RETURN p")
        engine.execute("CREATE (p:Post)")
        engine.execute("CREATE (p:Post)")
        total_rows = sum(n.emitted_rows for n in view.network.nodes())
        assert total_rows >= 2
