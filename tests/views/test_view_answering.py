"""Answering one-shot queries from materialised views: the differential gate.

The central contract: ``evaluate(use_views=True)`` must be row-for-row
identical to ``evaluate(use_views=False)`` — across exact hits, residual
(containment) hits, parameter mismatches (which must fall back), mid-stream
detach (stale entries must never serve), and batched/rollback transaction
windows (in-flight state must never serve).  Random graphs and random
update streams drive the property form of the claim.
"""

import random

import pytest

from repro import PropertyGraph, QueryEngine
from repro.compiler.fingerprint import fingerprint
from repro.rete.sharing import SharedSubplanLayer
from repro.workloads.random_graphs import random_graph, random_updates

#: registered view shapes over the random-graph schema
VIEW_QUERIES = [
    "MATCH (p:Post) WHERE p.lang = 'en' RETURN p",
    "MATCH (a:Post)-[:REPLY]->(b:Comm) WHERE a.lang = b.lang RETURN a, b",
    "MATCH (c:Comm) RETURN c.lang AS l, count(*) AS n",
    "MATCH (a)-[e:LIKES]->(b) WHERE e.score >= 2 RETURN a, b",
    "MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(c:Comm) RETURN p, c",
]

#: one-shot reads: exact hits, alpha-renamed hits, residual hits over view
#: roots and shared subplans, ordering residuals, and guaranteed misses
READ_QUERIES = [
    "MATCH (p:Post) WHERE p.lang = 'en' RETURN p",
    "MATCH (x:Post) WHERE x.lang = 'en' RETURN x",
    "MATCH (u:Post)-[:REPLY]->(v:Comm) WHERE u.lang = v.lang RETURN DISTINCT u",
    "MATCH (c:Comm) RETURN c.lang AS l, count(*) AS n ORDER BY n DESC LIMIT 2",
    "MATCH (c:Comm) WITH c.lang AS l, count(*) AS n WHERE n > 1 RETURN l, n",
    "MATCH (a)-[e:LIKES]->(b) WHERE e.score >= 2 RETURN a, b ORDER BY a LIMIT 3",
    "MATCH (q:Person) RETURN q",
    "MATCH (a:Person)-[:KNOWS]-(b:Person) RETURN a, b",
]


def assert_answers_match(engine: QueryEngine, queries=READ_QUERIES) -> None:
    """The differential gate: view-answered ≡ full recomputation."""
    for query in queries:
        served = engine.evaluate(query, use_views=True).rows()
        direct = engine.evaluate(query, use_views=False).rows()
        assert served == direct, query


def small_engine(**kwargs) -> tuple[PropertyGraph, QueryEngine]:
    graph = PropertyGraph()
    engine = QueryEngine(graph, **kwargs)
    p1 = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
    p2 = graph.add_vertex(labels=["Post"], properties={"lang": "de"})
    c1 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    c2 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    graph.add_edge(p1, c1, "REPLY")
    graph.add_edge(p2, c2, "REPLY")
    return graph, engine


class TestExactHits:
    def test_same_text_is_served_from_the_view_root(self):
        graph, engine = small_engine()
        query = "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c"
        view = engine.register(query)
        result = engine.evaluate(query)
        assert result.multiset() == view.multiset()
        assert result.rows() == engine.evaluate(query, use_views=False).rows()
        stats = engine.answer_stats()
        assert stats.exact == 1 and stats.root_hits == 1

    def test_alpha_renamed_query_hits_the_same_view(self):
        graph, engine = small_engine()
        engine.register(
            "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c"
        )
        renamed = (
            "MATCH (x:Post)-[:REPLY]->(y:Comm) WHERE x.lang = y.lang RETURN x, y"
        )
        assert (
            engine.evaluate(renamed).rows()
            == engine.evaluate(renamed, use_views=False).rows()
        )
        assert engine.answer_stats().exact == 1

    def test_served_reads_track_updates(self):
        graph, engine = small_engine()
        query = "MATCH (p:Post) WHERE p.lang = 'en' RETURN p"
        engine.register(query)
        for lang in ("en", "fr", "en", None):
            vertex = graph.add_vertex(labels=["Post"])
            if lang is not None:
                graph.set_vertex_property(vertex, "lang", lang)
            assert (
                engine.evaluate(query).rows()
                == engine.evaluate(query, use_views=False).rows()
            )
        assert engine.answer_stats().answered == 4

    def test_engine_wide_ablation_switch(self):
        graph, engine = small_engine(answer_from_views=False)
        query = "MATCH (p:Post) WHERE p.lang = 'en' RETURN p"
        engine.register(query)
        engine.evaluate(query)
        assert engine.answer_stats().queries == 0  # catalog never consulted
        engine.evaluate(query, use_views=True)  # per-call override still works
        assert engine.answer_stats().answered == 1


class TestResidualHits:
    def test_distinct_over_shared_join_core(self):
        graph, engine = small_engine()
        engine.register(
            "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c"
        )
        read = (
            "MATCH (u:Post)-[:REPLY]->(v:Comm) WHERE u.lang = v.lang "
            "RETURN DISTINCT u"
        )
        assert (
            engine.evaluate(read).rows()
            == engine.evaluate(read, use_views=False).rows()
        )
        stats = engine.answer_stats()
        assert stats.residual == 1 and stats.subplan_hits >= 1

    def test_topk_over_maintained_aggregate(self):
        """Top-k is outside the maintainable fragment, but a maintained
        aggregate plus a small residual sort answers it."""
        graph, engine = small_engine()
        engine.register("MATCH (c:Comm) RETURN c.lang AS l, count(*) AS n")
        read = (
            "MATCH (c:Comm) RETURN c.lang AS l, count(*) AS n "
            "ORDER BY n DESC LIMIT 1"
        )
        assert (
            engine.evaluate(read).rows()
            == engine.evaluate(read, use_views=False).rows()
        )
        stats = engine.answer_stats()
        assert stats.answered == 1 and stats.residual == 1

    def test_explain_reports_the_hit(self):
        graph, engine = small_engine()
        query = "MATCH (p:Post) WHERE p.lang = 'en' RETURN p"
        report = engine.explain(query)
        assert "no covering view" in report
        engine.register(query)
        report = engine.explain(query)
        assert "exact hit" in report and query in report
        # explain is pure: no answering counters moved
        assert engine.answer_stats().queries == 0


class TestParameterCompatibility:
    QUERY = "MATCH (p:Post) WHERE p.lang = $lang RETURN p"

    def test_matching_bindings_serve(self):
        graph, engine = small_engine()
        engine.register(self.QUERY, parameters={"lang": "en"})
        served = engine.evaluate(self.QUERY, {"lang": "en"})
        assert (
            served.rows()
            == engine.evaluate(self.QUERY, {"lang": "en"}, use_views=False).rows()
        )
        assert engine.answer_stats().answered == 1

    def test_mismatched_bindings_fall_back(self):
        graph, engine = small_engine()
        engine.register(self.QUERY, parameters={"lang": "en"})
        served = engine.evaluate(self.QUERY, {"lang": "de"})
        assert (
            served.rows()
            == engine.evaluate(self.QUERY, {"lang": "de"}, use_views=False).rows()
        )
        stats = engine.answer_stats()
        assert stats.answered == 0 and stats.fallbacks == 1

    def test_type_conflating_bindings_fall_back(self):
        """1 == True in Python, but a view bound at 1 must not serve True."""
        graph, engine = small_engine()
        query = "MATCH (p:Post) WHERE p.flag = $f RETURN p"
        graph.set_vertex_property(next(iter(graph.vertices("Post"))), "flag", True)
        engine.register(query, parameters={"f": 1})
        assert (
            engine.evaluate(query, {"f": True}).rows()
            == engine.evaluate(query, {"f": True}, use_views=False).rows()
        )
        assert engine.answer_stats().answered == 0


class TestStalenessGates:
    def test_mid_stream_detach_stops_serving_the_root(self):
        graph, engine = small_engine(detached_cache_size=0)
        query = "MATCH (p:Post) WHERE p.lang = 'en' RETURN p"
        view = engine.register(query)
        engine.evaluate(query)
        assert engine.answer_stats().answered == 1
        view.detach()
        graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        assert (
            engine.evaluate(query).rows()
            == engine.evaluate(query, use_views=False).rows()
        )
        assert engine.answer_stats().answered == 1  # second read fell back

    def test_retained_subplans_keep_serving_correctly(self):
        """With the detached LRU, pruned-but-retained subplans are still
        maintained — serving from them must stay oracle-equal under
        subsequent updates."""
        graph, engine = small_engine(detached_cache_size=4)
        query = (
            "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c"
        )
        engine.register(query).detach()
        layer = engine._incremental.input_layer
        assert isinstance(layer, SharedSubplanLayer)
        assert layer.detached_count > 0
        post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        comm = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        graph.add_edge(post, comm, "REPLY")
        assert (
            engine.evaluate(query).rows()
            == engine.evaluate(query, use_views=False).rows()
        )
        assert engine.answer_stats().subplan_hits >= 1

    def test_open_batch_window_declines(self):
        graph, engine = small_engine()
        query = "MATCH (p:Post) WHERE p.lang = 'en' RETURN p"
        engine.register(query)
        with engine.batch():
            doomed = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
            # views are intentionally stale here; evaluate must not serve them
            inside = engine.evaluate(query)
            assert inside.rows() == engine.evaluate(
                query, use_views=False
            ).rows()
            assert engine.answer_stats().stale_declines >= 1
            graph.remove_vertex(doomed)
        # window closed: serving resumes, still oracle-equal
        before = engine.answer_stats().answered
        assert (
            engine.evaluate(query).rows()
            == engine.evaluate(query, use_views=False).rows()
        )
        assert engine.answer_stats().answered == before + 1

    def test_on_change_callbacks_never_see_half_propagated_state(self):
        """An on_change callback runs while sibling networks may not have
        processed the delta yet; evaluate() inside it must fall back."""
        graph, engine = small_engine()
        count_query = "MATCH (p:Post) RETURN count(*) AS n"
        read_query = "MATCH (p:Post) RETURN p"
        watcher = engine.register(read_query)
        engine.register(count_query)
        seen: list[tuple[list, list]] = []

        def probe(delta):
            seen.append(
                (
                    engine.evaluate(count_query).rows(),
                    engine.evaluate(count_query, use_views=False).rows(),
                )
            )

        watcher.on_change(probe)
        graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        assert seen and all(served == direct for served, direct in seen)
        assert engine.answer_stats().stale_declines >= 1

    def test_transaction_and_rollback_windows(self):
        graph = PropertyGraph()
        engine = QueryEngine(graph, batch_transactions=True)
        post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        query = "MATCH (p:Post) WHERE p.lang = 'en' RETURN p"
        engine.register(query)
        with graph.transaction():
            graph.add_vertex(labels=["Post"], properties={"lang": "en"})
            assert (
                engine.evaluate(query).rows()
                == engine.evaluate(query, use_views=False).rows()
            )
        assert engine.answer_stats().stale_declines >= 1
        # committed: serving resumes with the new row visible
        assert len(engine.evaluate(query).rows()) == 2
        try:
            with graph.transaction():
                graph.add_vertex(labels=["Post"], properties={"lang": "en"})
                raise RuntimeError("roll back")
        except RuntimeError:
            pass
        assert (
            engine.evaluate(query).rows()
            == engine.evaluate(query, use_views=False).rows()
        )
        assert len(engine.evaluate(query).rows()) == 2


class TestDetachedLru:
    QUERY = (
        "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c"
    )

    def test_register_detach_churn_revives_subplans(self):
        graph, engine = small_engine(detached_cache_size=4)
        layer = engine._incremental.input_layer
        engine.register(self.QUERY).detach()
        built_once = layer.stats.subplan_nodes
        view = engine.register(self.QUERY)
        assert layer.stats.subplan_nodes == built_once  # nothing rebuilt
        assert layer.stats.detached_revived > 0
        # the revived chain is live and correct
        post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        comm = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        graph.add_edge(post, comm, "REPLY")
        assert view.multiset() == engine.evaluate(
            self.QUERY, use_views=False
        ).multiset()

    def test_retention_is_bounded_and_evicts_lru(self):
        graph, engine = small_engine(detached_cache_size=1)
        layer = engine._incremental.input_layer
        engine.register(self.QUERY).detach()
        engine.register("MATCH (c:Comm) RETURN c.lang AS l, count(*) AS n").detach()
        assert layer.detached_count <= 1
        assert layer.stats.detached_evicted > 0

    def test_eviction_cascade_does_not_displace_warm_roots(self):
        """Evicting a cold root orphans its upstream chain; those orphans
        must not enter the LRU as most-recent and push out the root that
        was detached last (whose instant revival is the feature)."""
        graph, engine = small_engine(detached_cache_size=1)
        layer = engine._incremental.input_layer
        engine.register("MATCH (p:Post) WHERE p.lang = 'en' RETURN p").detach()
        engine.register(self.QUERY).detach()  # deep chain, detached last
        assert layer.detached_count <= 1
        # the retained root is the most recently detached chain's root:
        # re-registering it rebuilds nothing
        built = layer.stats.subplan_nodes
        engine.register(self.QUERY)
        assert layer.stats.subplan_nodes == built

    def test_zero_cache_restores_strict_pruning(self):
        graph, engine = small_engine(detached_cache_size=0)
        layer = engine._incremental.input_layer
        engine.register(self.QUERY).detach()
        assert layer.subplan_count == 0
        assert layer.node_count == 0
        assert layer.detached_count == 0


class TestMechanics:
    def test_fingerprints_are_memoised_per_operator(self):
        graph, engine = small_engine()
        plan = engine.compile(VIEW_QUERIES[1]).plan
        first = fingerprint(plan)
        assert fingerprint(plan) is first  # cached object, not recomputed
        assert plan._fingerprint is first
        for child in plan.children:
            assert child._fingerprint is not None or fingerprint(child) is None

    def test_router_union_cache_hits_and_invalidates(self):
        graph, engine = small_engine()
        engine.register("MATCH (p:Post) RETURN p")
        router = engine._incremental.input_layer.router
        graph.add_vertex(labels=["Post"])
        assert ("vm", frozenset({"Post"})) in router._union_cache
        cached = router._union_cache[("vm", frozenset({"Post"}))]
        graph.add_vertex(labels=["Post"])
        # second identical event reuses the memoised candidate list
        assert router._union_cache[("vm", frozenset({"Post"}))] is cached
        engine.register("MATCH (c:Comm) RETURN c")  # new interests invalidate
        assert not router._union_cache
        # after invalidation, routing still reaches the right nodes
        graph.add_vertex(labels=["Post"])
        assert (
            engine.evaluate("MATCH (p:Post) RETURN p", use_views=False).rows()
            == engine.views[0].rows()
        )

    def test_router_union_cache_stays_bounded(self):
        """Data-dependent signatures (novel property keys, label sets)
        must not grow the cache for the engine's lifetime."""
        graph, engine = small_engine()
        engine.register("MATCH (p:Post) WHERE p.lang = 'en' RETURN p")
        router = engine._incremental.input_layer.router
        post = next(iter(graph.vertices("Post")))
        for index in range(50):
            graph.set_vertex_property(post, f"k{index}", index)  # novel keys
        # irrelevant-key events cached nothing beyond the bounded unions
        assert len(router._union_cache) <= router._UNION_CACHE_LIMIT
        assert not any(key == ("ev", "k7") for key in router._union_cache)

    def test_reachability_mode_never_serves_transitive_subtrees(self):
        graph = PropertyGraph()
        engine = QueryEngine(graph, transitive_mode="reachability")
        a = graph.add_vertex(labels=["Post"])
        b = graph.add_vertex(labels=["Comm"])
        c = graph.add_vertex(labels=["Comm"])
        graph.add_edge(a, b, "REPLY")
        graph.add_edge(b, c, "REPLY")
        graph.add_edge(a, c, "REPLY")
        query = "MATCH (p:Post)-[:REPLY*]->(x) RETURN p, x"
        engine.register(query)
        # trails oracle vs reachability view: multiplicities differ, so the
        # catalog must refuse — evaluate stays trails-correct
        assert (
            engine.evaluate(query).rows()
            == engine.evaluate(query, use_views=False).rows()
        )
        assert engine.answer_stats().answered == 0


class TestRandomDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_streamed_updates_keep_served_reads_oracle_equal(self, seed):
        state = random_graph(vertices=15, edges=20, seed=seed)
        engine = QueryEngine(state.graph)
        for query in VIEW_QUERIES:
            engine.register(query)
        assert_answers_match(engine)
        step = 0
        for _ in random_updates(state, 120, seed=seed + 50):
            step += 1
            if step % 20 == 0:
                assert_answers_match(engine)
        assert_answers_match(engine)
        stats = engine.answer_stats()
        assert stats.answered > 0 and stats.fallbacks > 0

    def test_mid_stream_register_and_detach(self):
        rng = random.Random(7)
        state = random_graph(vertices=12, edges=18, seed=7)
        engine = QueryEngine(state.graph)
        live = []
        step = 0
        for _ in random_updates(state, 150, seed=57):
            step += 1
            if step % 12 == 0:
                if live and rng.random() < 0.5:
                    live.pop(rng.randrange(len(live))).detach()
                else:
                    live.append(
                        engine.register(rng.choice(VIEW_QUERIES))
                    )
            if step % 25 == 0:
                assert_answers_match(engine)
        assert_answers_match(engine)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_batched_transactions_stream(self, seed):
        state = random_graph(vertices=12, edges=18, seed=seed)
        engine = QueryEngine(state.graph, batch_transactions=True)
        for query in VIEW_QUERIES:
            engine.register(query)
        graph = state.graph
        rng = random.Random(seed + 9)
        updates = random_updates(state, 90, seed=seed + 77)
        done = False
        while not done:
            with graph.transaction():
                for _ in range(rng.randint(1, 6)):
                    if next(updates, None) is None:
                        done = True
                        break
                # inside the window: must decline and stay oracle-equal
                assert_answers_match(engine, READ_QUERIES[:3])
            assert_answers_match(engine, READ_QUERIES[:3])
        assert_answers_match(engine)
        assert engine.answer_stats().stale_declines > 0


class TestBindingPartitionServing:
    """One-shot queries served from a binding-indexed σ's partition.

    With cross-binding sharing, the parameterised-σ state for every live
    binding hangs off one shared node; a one-shot query under a binding
    some view maintains must be servable even when no view root covers
    the query's own shape (different projection on top)."""

    QUERY = (
        "MATCH (a:Post)-[:REPLY]->(b:Comm) WHERE a.lang = $lang RETURN a, b"
    )
    #: same σ/core, different residual top — can only hit the partition
    READ = (
        "MATCH (a:Post)-[:REPLY]->(b:Comm) WHERE a.lang = $lang "
        "RETURN DISTINCT b"
    )

    def test_partition_serves_other_projections(self):
        graph, engine = small_engine()
        engine.register(self.QUERY, parameters={"lang": "en"})
        engine.register(self.QUERY, parameters={"lang": "de"})
        for lang in ("en", "de"):
            explain = engine.explain(self.READ, parameters={"lang": lang})
            assert "binding-partition[" in explain, explain
            served = engine.evaluate(
                self.READ, parameters={"lang": lang}, use_views=True
            ).rows()
            direct = engine.evaluate(
                self.READ, parameters={"lang": lang}, use_views=False
            ).rows()
            assert served == direct
        assert engine.answer_stats().subplan_hits >= 2

    def test_unmaintained_binding_never_hits_a_partition(self):
        graph, engine = small_engine()
        engine.register(self.QUERY, parameters={"lang": "en"})
        explain = engine.explain(self.READ, parameters={"lang": "hu"})
        # no partition for "hu": the walk descends *past* the σ and serves
        # the binding-free core residually (σ + δ on top) — never a
        # partition keyed to another binding
        assert "binding-partition[" not in explain
        assert "subplan[" in explain
        served = engine.evaluate(
            self.READ, parameters={"lang": "hu"}, use_views=True
        ).rows()
        direct = engine.evaluate(
            self.READ, parameters={"lang": "hu"}, use_views=False
        ).rows()
        assert served == direct

    def test_partition_tracks_updates(self):
        graph, engine = small_engine()
        engine.register(self.QUERY, parameters={"lang": "en"})
        post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        comm = graph.add_vertex(labels=["Comm"], properties={"lang": "hu"})
        graph.add_edge(post, comm, "REPLY")
        served = engine.evaluate(
            self.READ, parameters={"lang": "en"}, use_views=True
        ).rows()
        direct = engine.evaluate(
            self.READ, parameters={"lang": "en"}, use_views=False
        ).rows()
        assert served == direct

    def test_detached_binding_keeps_serving_only_while_retained(self):
        graph, engine = small_engine(detached_cache_size=4)
        view = engine.register(self.QUERY, parameters={"lang": "en"})
        keeper = engine.register(self.QUERY, parameters={"lang": "de"})
        view.detach()
        # the partition is LRU-retained and still maintained: serving it
        # stays oracle-equal even under further updates
        post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
        comm = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
        graph.add_edge(post, comm, "REPLY")
        served = engine.evaluate(
            self.READ, parameters={"lang": "en"}, use_views=True
        ).rows()
        direct = engine.evaluate(
            self.READ, parameters={"lang": "en"}, use_views=False
        ).rows()
        assert served == direct

    def test_strictly_pruned_binding_never_serves_stale(self):
        graph, engine = small_engine(detached_cache_size=0)
        view = engine.register(self.QUERY, parameters={"lang": "en"})
        keeper = engine.register(self.QUERY, parameters={"lang": "de"})
        view.detach()
        explain = engine.explain(self.READ, parameters={"lang": "en"})
        # the "en" partition is gone for good; the keeper still holds the
        # binding-free core, which may serve residually — but the dropped
        # partition itself must never be consulted again
        assert "binding-partition[" not in explain
        served = engine.evaluate(
            self.READ, parameters={"lang": "en"}, use_views=True
        ).rows()
        direct = engine.evaluate(
            self.READ, parameters={"lang": "en"}, use_views=False
        ).rows()
        assert served == direct

    def test_ablation_engine_serves_via_exact_binding_keys(self):
        graph, engine = small_engine(share_across_bindings=False)
        engine.register(self.QUERY, parameters={"lang": "en"})
        served = engine.evaluate(
            self.READ, parameters={"lang": "en"}, use_views=True
        ).rows()
        direct = engine.evaluate(
            self.READ, parameters={"lang": "en"}, use_views=False
        ).rows()
        assert served == direct
