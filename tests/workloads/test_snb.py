"""SNB workload: generator invariants, query registration, differential."""

import pytest

from repro import QueryEngine
from repro.errors import UnsupportedForIncrementalError
from repro.workloads.snb import (
    LANGS,
    SNB_QUERIES,
    SNB_TOPK_QUERIES,
    generate_snb,
    update_stream,
)


def parameters_for(query):
    return {"name": "person-0"} if "$name" in query else None


@pytest.fixture(scope="module")
def net():
    return generate_snb(
        persons=10, forums=2, posts_per_forum=4, comments_per_post=3, seed=3
    )


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = generate_snb(persons=6, seed=9)
        b = generate_snb(persons=6, seed=9)
        assert a.graph.stats() == b.graph.stats()
        assert sorted(a.lang_of.items()) == sorted(b.lang_of.items())

    def test_different_seeds_differ(self):
        a = generate_snb(persons=6, seed=1)
        b = generate_snb(persons=6, seed=2)
        assert a.lang_of != b.lang_of

    def test_schema_complete(self, net):
        graph = net.graph
        assert {"Person", "Forum", "Post", "Comment", "Tag"} <= set(graph.labels())
        assert {
            "KNOWS",
            "LIKES",
            "HAS_MEMBER",
            "CONTAINER_OF",
            "REPLY_OF",
            "HAS_CREATOR",
            "HAS_TAG",
        } <= set(graph.edge_types())

    def test_every_message_has_creator(self, net):
        graph = net.graph
        for message in net.posts + net.comments:
            creators = [
                graph.target_of(e) for e in graph.out_edges(message, "HAS_CREATOR")
            ]
            assert len(creators) == 1
            assert graph.has_label(creators[0], "Person")

    def test_comments_form_reply_forest_rooted_at_posts(self, net):
        graph = net.graph
        for comment in net.comments:
            parents = [
                graph.target_of(e) for e in graph.out_edges(comment, "REPLY_OF")
            ]
            assert len(parents) == 1
            at = parents[0]
            hops = 0
            while graph.has_label(at, "Comment"):
                (edge,) = list(graph.out_edges(at, "REPLY_OF"))
                at = graph.target_of(edge)
                hops += 1
                assert hops < 1000  # no cycles
            assert graph.has_label(at, "Post")

    def test_langs_from_palette(self, net):
        assert set(net.lang_of.values()) <= set(LANGS)


class TestQueries:
    def test_all_queries_in_fragment(self, net):
        engine = QueryEngine(net.graph)
        for query in SNB_QUERIES.values():
            assert engine.is_incremental(query), query

    def test_topk_queries_outside_fragment(self, net):
        engine = QueryEngine(net.graph)
        for query in SNB_TOPK_QUERIES.values():
            assert not engine.is_incremental(query)
            with pytest.raises(UnsupportedForIncrementalError):
                engine.register(query)

    def test_views_match_oracle_through_update_stream(self):
        net = generate_snb(
            persons=8, forums=2, posts_per_forum=3, comments_per_post=2, seed=13
        )
        engine = QueryEngine(net.graph)
        views = {
            key: engine.register(query, parameters_for(query))
            for key, query in SNB_QUERIES.items()
        }
        applied = 0
        for kind, apply in update_stream(net, operations=40, seed=21):
            apply()
            applied += 1
            if applied % 10:
                continue  # full differential check every 10th update
            for key, query in SNB_QUERIES.items():
                live = sorted(views[key].rows(), key=repr)
                oracle = sorted(
                    engine.evaluate(query, parameters_for(query), use_views=False).rows(), key=repr
                )
                assert live == oracle, (key, kind)

    def test_update_stream_mix_covers_all_kinds(self):
        net = generate_snb(persons=8, seed=13)
        kinds = {kind for kind, _ in update_stream(net, operations=300, seed=8)}
        assert kinds == {"comment", "like", "post", "membership", "lang", "unlike"}

    def test_ic7_counts_match_degree(self, net):
        engine = QueryEngine(net.graph)
        result = engine.evaluate(SNB_QUERIES["ic7_likers"], use_views=False)
        total_likes = sum(n for _, n in result.rows())
        like_edges_to_posts = sum(
            1
            for e in net.graph.edges("LIKES")
            if net.graph.has_label(net.graph.target_of(e), "Post")
        )
        assert total_likes == like_edges_to_posts
