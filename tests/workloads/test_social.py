"""Tests for the social-network workload (the running-example domain)."""

import pytest

from repro import QueryEngine
from repro.workloads import social


@pytest.fixture(scope="module")
def network():
    return social.generate_social(persons=6, posts_per_person=2, comments_per_post=4, seed=3)


class TestGenerator:
    def test_deterministic(self):
        a = social.generate_social(persons=4, seed=9)
        b = social.generate_social(persons=4, seed=9)
        assert a.graph.stats() == b.graph.stats()

    def test_shape(self, network):
        assert len(network.persons) == 6
        assert len(network.posts) == 12
        assert len(network.comments) == 48
        assert network.graph.edge_types() >= {"REPLY", "KNOWS", "LIKES", "HAS_CREATOR"}

    def test_reply_edges_form_trees(self, network):
        # every comment has exactly one incoming REPLY edge (its parent)
        for comment in network.comments:
            parents = list(network.graph.in_edges(comment, "REPLY"))
            assert len(parents) == 1

    def test_langs_assigned(self, network):
        for post in network.posts:
            assert network.graph.vertex_property(post, "lang") in social.LANGS


class TestQueriesAndUpdates:
    def test_all_queries_incremental_and_correct(self, network):
        engine = QueryEngine(network.graph)
        for name, query in social.QUERIES.items():
            assert engine.compile(query).is_incremental, name
            view = engine.register(query)
            assert view.multiset() == engine.evaluate(query, use_views=False).multiset(), name
            view.detach()

    def test_add_comment_grows_thread_view(self):
        net = social.generate_social(persons=2, posts_per_person=1, comments_per_post=1, seed=4)
        engine = QueryEngine(net.graph)
        view = engine.register(social.RUNNING_EXAMPLE_QUERY)
        before = len(view.rows())
        post = net.posts[0]
        lang = net.graph.vertex_property(post, "lang")
        social.add_comment(net, post, lang)
        assert len(view.rows()) == before + 1

    def test_delete_subtree_removes_descendants(self):
        net = social.generate_social(persons=2, posts_per_person=1, comments_per_post=0, seed=5)
        post = net.posts[0]
        top = social.add_comment(net, post, "en")
        child = social.add_comment(net, top, "en")
        grandchild = social.add_comment(net, child, "en")
        removed = social.delete_comment_subtree(net, top)
        assert removed == 3
        for comment in (top, child, grandchild):
            assert not net.graph.has_vertex(comment)
        assert net.comments == []

    def test_update_stream_keeps_views_consistent(self):
        net = social.generate_social(persons=4, posts_per_person=1, comments_per_post=2, seed=6)
        engine = QueryEngine(net.graph)
        views = {name: engine.register(q) for name, q in social.QUERIES.items()}
        kinds = set()
        for kind in social.update_stream(net, 80, seed=8):
            kinds.add(kind)
        # the mix exercised several operation kinds
        assert {"add_comment", "change_lang", "like"} <= kinds
        for name, query in social.QUERIES.items():
            assert views[name].multiset() == engine.evaluate(query, use_views=False).multiset(), name
