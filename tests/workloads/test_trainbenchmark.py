"""Tests for the Train Benchmark workload: generator shape, query
correctness, inject/repair round trips under incremental maintenance."""

import random

import pytest

from repro import QueryEngine
from repro.workloads import trainbenchmark as tb


@pytest.fixture(scope="module")
def model():
    return tb.generate_railway(routes=8, seed=42)


@pytest.fixture(scope="module")
def engine(model):
    return QueryEngine(model.graph)


class TestGenerator:
    def test_deterministic(self):
        a = tb.generate_railway(routes=3, seed=7)
        b = tb.generate_railway(routes=3, seed=7)
        assert a.graph.stats() == b.graph.stats()
        assert set(a.graph.vertices("Route")) == set(b.graph.vertices("Route"))

    def test_size_scales_with_routes(self):
        small = tb.generate_railway(routes=2, seed=1)
        large = tb.generate_railway(routes=8, seed=1)
        assert large.graph.vertex_count > 3 * small.graph.vertex_count

    def test_schema_labels_present(self, model):
        labels = model.graph.labels()
        assert {
            "Route",
            "Semaphore",
            "Switch",
            "SwitchPosition",
            "Segment",
            "Sensor",
            "TrackElement",
        } <= labels

    def test_switches_are_track_elements(self, model):
        for switch in model.switches:
            assert model.graph.has_label(switch, "TrackElement")

    def test_error_rates_zero_gives_clean_model(self):
        clean = tb.generate_railway(
            routes=5, seed=3, error_rates={name: 0.0 for name in tb.ERROR_RATES}
        )
        engine = QueryEngine(clean.graph)
        for name, query in tb.QUERIES.items():
            assert engine.evaluate(query, use_views=False).rows() == [], name

    def test_default_rates_produce_violations(self, model, engine):
        total = sum(len(engine.evaluate(q, use_views=False).rows()) for q in tb.QUERIES.values())
        assert total > 0


class TestQueries:
    def test_all_queries_are_incremental(self, engine):
        for name, query in tb.QUERIES.items():
            assert engine.compile(query).is_incremental, name

    def test_all_views_match_oracle(self, model, engine):
        for name, query in tb.QUERIES.items():
            view = engine.register(query)
            assert view.multiset() == engine.evaluate(query, use_views=False).multiset(), name
            view.detach()

    def test_poslength_detects_exact_segments(self):
        clean = tb.generate_railway(
            routes=2, seed=5, error_rates={name: 0.0 for name in tb.ERROR_RATES}
        )
        engine = QueryEngine(clean.graph)
        segment = clean.segments[0]
        clean.graph.set_vertex_property(segment, "length", -1)
        assert engine.evaluate(tb.QUERIES["PosLength"], use_views=False).rows() == [(segment,)]


@pytest.mark.parametrize("query_name", list(tb.QUERIES))
def test_inject_repair_round_trip(query_name):
    """inject creates violations the view sees; repair removes them —
    with the view maintained incrementally throughout (E5/E6 semantics)."""
    model = tb.generate_railway(
        routes=5, seed=11, error_rates={name: 0.0 for name in tb.ERROR_RATES}
    )
    engine = QueryEngine(model.graph)
    view = engine.register(tb.QUERIES[query_name])
    assert view.rows() == []

    rng = random.Random(13)
    applied = tb.inject(model, query_name, 3, rng)
    assert applied > 0
    matches = view.rows()
    assert matches, f"{query_name}: inject produced no violations"
    assert view.multiset() == engine.evaluate(tb.QUERIES[query_name], use_views=False).multiset()

    tb.repair(model, query_name, matches, len(matches), rng)
    assert view.rows() == [], f"{query_name}: repair left violations"
    assert view.multiset() == engine.evaluate(tb.QUERIES[query_name], use_views=False).multiset()


def test_unknown_transformation_rejected(model):
    with pytest.raises(ValueError):
        tb.inject(model, "NoSuchQuery", 1, random.Random(0))
    with pytest.raises(ValueError):
        tb.repair(model, "NoSuchQuery", [], 1, random.Random(0))
